// Package mips implements SymPLFIED's architecture front end (paper
// Section 5, "Supporting Tools"): a translator from MIPS-syntax assembly to
// the framework's generic assembly language. The paper supports "only the
// MIPS instruction set" through a custom translator; this package does the
// same for a word-addressed MIPS dialect:
//
//   - the usual register names ($zero, $v0..$v1, $a0..$a3, $t0..$t9,
//     $s0..$s7, $sp, $fp, $ra, or numeric);
//   - .text/.data sections, .word/.asciiz/.space directives (the data
//     segment is placed at DataBase and materialized by an initialization
//     preamble, per the machine model's "loader initializes all locations"
//     assumption);
//   - the common integer instruction subset plus pseudo-instructions
//     (li, la, move, mul, b, bge/bgt/ble/blt, blez/bgtz/bltz/bgez);
//   - mult/div with HI/LO via mfhi/mflo (HI of mult is not modeled — the
//     64-bit machine word holds the full product in LO);
//   - SPIM-style syscalls: 1 print_int, 4 print_string, 5 read_int,
//     10 exit, 11 print_char.
//
// Addressing is word-granular, matching the machine model: memory operands
// count words, not bytes. $at ($1) is reserved for translation temporaries,
// as a real MIPS assembler reserves it.
package mips

import (
	"fmt"
	"strconv"
	"strings"

	"symplfied/internal/isa"
)

// DataBase is where the .data segment is placed in the word-addressed
// memory.
const DataBase = 4096

// Scratch memory words used by translated syscalls and div/mult.
const (
	scratchLO     = 90
	scratchHI     = 91
	scratchSysA0  = 93
	scratchUnused = 94
)

// TranslateError reports a translation failure with its source line.
type TranslateError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *TranslateError) Error() string {
	return fmt.Sprintf("mips:%d: %s", e.Line, e.Msg)
}

var _ error = (*TranslateError)(nil)

// Translate converts MIPS-dialect source into a program named name.
func Translate(name, src string) (*isa.Program, error) {
	t := &translator{
		b:          isa.NewBuilder(name),
		dataLabels: make(map[string]int64),
		nextData:   DataBase,
	}
	if err := t.run(src); err != nil {
		return nil, err
	}
	return t.b.Build()
}

type dataItem struct {
	addr  int64
	value int64
}

type translator struct {
	b          *isa.Builder
	dataLabels map[string]int64
	nextData   int64
	data       []dataItem
	inData     bool
	sysCount   int
	errLine    int
}

func (t *translator) errf(line int, format string, args ...any) error {
	return &TranslateError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

type stmt struct {
	line   int
	labels []string
	op     string
	args   []string
}

func (t *translator) run(src string) error {
	stmts, err := t.scan(src)
	if err != nil {
		return err
	}

	// Data initialization preamble: the "loader" materialized as code.
	t.b.Label("__init_data")
	for _, d := range t.data {
		if d.value == 0 {
			t.b.St(isa.RegZero, d.addr, isa.RegZero)
			continue
		}
		t.b.Li(1, d.value)
		t.b.St(1, d.addr, isa.RegZero)
	}

	for _, s := range stmts {
		for _, l := range s.labels {
			t.b.Label(l)
		}
		if s.op == "" {
			continue
		}
		if err := t.emit(s); err != nil {
			return err
		}
	}
	// A fallthrough off the end halts rather than fetching invalid code.
	t.b.Halt()
	return nil
}

// scan tokenizes the source, processes sections and data directives, and
// returns the text-section statements in order.
func (t *translator) scan(src string) ([]stmt, error) {
	var stmts []stmt
	var pendingData []string // data labels waiting for a directive
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}

		var labels []string
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 || strings.ContainsAny(line[:i], " \t\"(,") {
				break
			}
			labels = append(labels, strings.TrimSpace(line[:i]))
			line = strings.TrimSpace(line[i+1:])
		}

		if line == "" {
			if t.inData {
				pendingData = append(pendingData, labels...)
			} else if len(labels) > 0 {
				stmts = append(stmts, stmt{line: lineNo + 1, labels: labels})
			}
			continue
		}

		fields := strings.Fields(line)
		op := strings.ToLower(fields[0])
		rest := strings.TrimSpace(line[len(fields[0]):])

		switch op {
		case ".text":
			t.inData = false
			continue
		case ".data":
			t.inData = true
			pendingData = append(pendingData, labels...)
			continue
		case ".globl", ".global", ".align", ".ent", ".end", ".frame", ".set":
			continue
		}

		if t.inData {
			all := append(pendingData, labels...)
			pendingData = nil
			for _, l := range all {
				t.dataLabels[l] = t.nextData
			}
			if err := t.dataDirective(lineNo+1, op, rest); err != nil {
				return nil, err
			}
			continue
		}

		args := splitArgs(rest)
		stmts = append(stmts, stmt{line: lineNo + 1, labels: labels, op: op, args: args})
	}
	return stmts, nil
}

func (t *translator) dataDirective(line int, op, rest string) error {
	switch op {
	case ".word":
		for _, f := range splitArgs(rest) {
			v, err := parseImm(f)
			if err != nil {
				return t.errf(line, ".word: %v", err)
			}
			t.data = append(t.data, dataItem{addr: t.nextData, value: v})
			t.nextData++
		}
	case ".space":
		n, err := parseImm(strings.TrimSpace(rest))
		if err != nil || n < 0 {
			return t.errf(line, ".space: bad size %q", rest)
		}
		for i := int64(0); i < n; i++ {
			t.data = append(t.data, dataItem{addr: t.nextData})
			t.nextData++
		}
	case ".asciiz", ".ascii":
		s, err := strconv.Unquote(strings.TrimSpace(rest))
		if err != nil {
			return t.errf(line, "%s: bad string %q", op, rest)
		}
		for _, r := range s {
			t.data = append(t.data, dataItem{addr: t.nextData, value: int64(r)})
			t.nextData++
		}
		if op == ".asciiz" {
			t.data = append(t.data, dataItem{addr: t.nextData})
			t.nextData++
		}
	default:
		return t.errf(line, "unsupported data directive %q", op)
	}
	return nil
}

func splitArgs(s string) []string {
	var args []string
	depth := 0
	start := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
			}
		case ',':
			if depth == 0 && !inStr {
				args = append(args, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	tail := strings.TrimSpace(s[start:])
	if tail != "" {
		args = append(args, tail)
	}
	return args
}

func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "-0x") {
		neg := strings.HasPrefix(s, "-")
		hex := strings.TrimPrefix(strings.TrimPrefix(s, "-"), "0x")
		v, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			return 0, err
		}
		out := int64(v)
		if neg {
			out = -out
		}
		return out, nil
	}
	return strconv.ParseInt(s, 10, 64)
}
