package mips

import (
	"fmt"
	"strconv"
	"strings"

	"symplfied/internal/isa"
)

// regNames maps MIPS register names to numbers.
var regNames = map[string]isa.Reg{
	"zero": 0, "at": 1,
	"v0": 2, "v1": 3,
	"a0": 4, "a1": 5, "a2": 6, "a3": 7,
	"t0": 8, "t1": 9, "t2": 10, "t3": 11, "t4": 12, "t5": 13, "t6": 14, "t7": 15,
	"s0": 16, "s1": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
	"t8": 24, "t9": 25,
	"k0": 26, "k1": 27,
	"gp": 28, "sp": 29, "fp": 30, "s8": 30, "ra": 31,
}

func (t *translator) reg(line int, s string) (isa.Reg, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "$") {
		return 0, t.errf(line, "want register, got %q", s)
	}
	body := s[1:]
	if r, ok := regNames[strings.ToLower(body)]; ok {
		return r, nil
	}
	n, err := strconv.ParseUint(body, 10, 8)
	if err != nil || n >= isa.NumRegs {
		return 0, t.errf(line, "bad register %q", s)
	}
	return isa.Reg(n), nil
}

// immOrLabel resolves an immediate literal or a data-segment label address.
func (t *translator) immOrLabel(line int, s string) (int64, error) {
	if v, err := parseImm(s); err == nil {
		return v, nil
	}
	if addr, ok := t.dataLabels[strings.TrimSpace(s)]; ok {
		return addr, nil
	}
	return 0, t.errf(line, "bad immediate or data label %q", s)
}

// memOperand parses off(base), (base), label, or label+off.
func (t *translator) memOperand(line int, s string) (off int64, base isa.Reg, err error) {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return 0, 0, t.errf(line, "bad memory operand %q", s)
		}
		base, err = t.reg(line, s[i+1:len(s)-1])
		if err != nil {
			return 0, 0, err
		}
		head := strings.TrimSpace(s[:i])
		if head == "" {
			return 0, base, nil
		}
		off, err = t.immOrLabel(line, head)
		return off, base, err
	}
	off, err = t.immOrLabel(line, s)
	return off, isa.RegZero, err
}

type binSpec struct {
	regOp isa.Op
	immOp isa.Op
}

var threeOps = map[string]binSpec{
	"add": {isa.OpAdd, isa.OpAddi}, "addu": {isa.OpAdd, isa.OpAddi},
	"addi": {0, isa.OpAddi}, "addiu": {0, isa.OpAddi},
	"sub": {isa.OpSub, isa.OpSubi}, "subu": {isa.OpSub, isa.OpSubi},
	"mul":  {isa.OpMult, isa.OpMulti},
	"and":  {isa.OpAnd, isa.OpAndi},
	"andi": {0, isa.OpAndi},
	"or":   {isa.OpOr, isa.OpOri},
	"ori":  {0, isa.OpOri},
	"xor":  {isa.OpXor, isa.OpXori},
	"xori": {0, isa.OpXori},
	"nor":  {isa.OpNor, 0},
	"slt":  {isa.OpSetlt, isa.OpSetlti}, "sltu": {isa.OpSetlt, isa.OpSetlti},
	"slti": {0, isa.OpSetlti}, "sltiu": {0, isa.OpSetlti},
	"seq":  {isa.OpSeteq, isa.OpSeteqi},
	"sne":  {isa.OpSetne, isa.OpSetnei},
	"sgt":  {isa.OpSetgt, isa.OpSetgti},
	"sge":  {isa.OpSetge, isa.OpSetgei},
	"sle":  {isa.OpSetle, isa.OpSetlei},
	"sllv": {isa.OpSll, isa.OpSlli}, "sll": {isa.OpSll, isa.OpSlli},
	"srlv": {isa.OpSrl, isa.OpSrli}, "srl": {isa.OpSrl, isa.OpSrli},
	"srav": {isa.OpSra, isa.OpSrai}, "sra": {isa.OpSra, isa.OpSrai},
	"rem": {isa.OpMod, isa.OpModi},
}

var condBranches = map[string]isa.Cmp{
	"bge": isa.CmpGe, "bgt": isa.CmpGt, "ble": isa.CmpLe, "blt": isa.CmpLt,
	"bgez": isa.CmpGe, "bgtz": isa.CmpGt, "blez": isa.CmpLe, "bltz": isa.CmpLt,
}

func (t *translator) emit(s stmt) error {
	b := t.b
	n := len(s.args)
	need := func(k int) error {
		if n != k {
			return t.errf(s.line, "%s: want %d operands, got %d", s.op, k, n)
		}
		return nil
	}

	if spec, ok := threeOps[s.op]; ok {
		if err := need(3); err != nil {
			return err
		}
		rd, err := t.reg(s.line, s.args[0])
		if err != nil {
			return err
		}
		rs, err := t.reg(s.line, s.args[1])
		if err != nil {
			return err
		}
		if strings.HasPrefix(strings.TrimSpace(s.args[2]), "$") {
			if spec.regOp == 0 {
				return t.errf(s.line, "%s: register form unsupported", s.op)
			}
			rt, err := t.reg(s.line, s.args[2])
			if err != nil {
				return err
			}
			b.Emit(isa.Instr{Op: spec.regOp, Rd: rd, Rs: rs, Rt: rt})
			return nil
		}
		if spec.immOp == 0 {
			return t.errf(s.line, "%s: immediate form unsupported", s.op)
		}
		imm, err := t.immOrLabel(s.line, s.args[2])
		if err != nil {
			return err
		}
		b.Emit(isa.Instr{Op: spec.immOp, Rd: rd, Rs: rs, Imm: imm})
		return nil
	}

	if cmp, ok := condBranches[s.op]; ok {
		zeroForm := strings.HasSuffix(s.op, "z")
		wantArgs := 3
		if zeroForm {
			wantArgs = 2
		}
		if err := need(wantArgs); err != nil {
			return err
		}
		rs, err := t.reg(s.line, s.args[0])
		if err != nil {
			return err
		}
		label := s.args[wantArgs-1]
		// Compare into $at, then branch on it: bge rs,rt,l =>
		// setge $at, rs, rt; bne $at, 0, l.
		if zeroForm {
			b.Emit(isa.Instr{Op: setCmpImmOp(cmp), Rd: 1, Rs: rs, Imm: 0})
		} else if strings.HasPrefix(strings.TrimSpace(s.args[1]), "$") {
			rt, err := t.reg(s.line, s.args[1])
			if err != nil {
				return err
			}
			b.Emit(isa.Instr{Op: setCmpRegOp(cmp), Rd: 1, Rs: rs, Rt: rt})
		} else {
			imm, err := t.immOrLabel(s.line, s.args[1])
			if err != nil {
				return err
			}
			b.Emit(isa.Instr{Op: setCmpImmOp(cmp), Rd: 1, Rs: rs, Imm: imm})
		}
		b.Bnei(1, 0, label)
		return nil
	}

	switch s.op {
	case "nop":
		b.Nop()
	case "li":
		if err := need(2); err != nil {
			return err
		}
		rd, err := t.reg(s.line, s.args[0])
		if err != nil {
			return err
		}
		imm, err := t.immOrLabel(s.line, s.args[1])
		if err != nil {
			return err
		}
		b.Li(rd, imm)
	case "la":
		if err := need(2); err != nil {
			return err
		}
		rd, err := t.reg(s.line, s.args[0])
		if err != nil {
			return err
		}
		addr, ok := t.dataLabels[strings.TrimSpace(s.args[1])]
		if !ok {
			return t.errf(s.line, "la: unknown data label %q", s.args[1])
		}
		b.Li(rd, addr)
	case "lui":
		if err := need(2); err != nil {
			return err
		}
		rd, err := t.reg(s.line, s.args[0])
		if err != nil {
			return err
		}
		imm, err := t.immOrLabel(s.line, s.args[1])
		if err != nil {
			return err
		}
		b.Emit(isa.Instr{Op: isa.OpLui, Rd: rd, Imm: imm})
	case "move":
		if err := need(2); err != nil {
			return err
		}
		rd, err := t.reg(s.line, s.args[0])
		if err != nil {
			return err
		}
		rs, err := t.reg(s.line, s.args[1])
		if err != nil {
			return err
		}
		b.Mov(rd, rs)
	case "lw", "sw":
		if err := need(2); err != nil {
			return err
		}
		rt, err := t.reg(s.line, s.args[0])
		if err != nil {
			return err
		}
		off, base, err := t.memOperand(s.line, s.args[1])
		if err != nil {
			return err
		}
		if s.op == "lw" {
			b.Ld(rt, off, base)
		} else {
			b.St(rt, off, base)
		}
	case "mult", "multu":
		if err := need(2); err != nil {
			return err
		}
		rs, err := t.reg(s.line, s.args[0])
		if err != nil {
			return err
		}
		rt, err := t.reg(s.line, s.args[1])
		if err != nil {
			return err
		}
		// LO <- rs*rt; HI is not modeled (the 64-bit word holds it all).
		b.Mult(1, rs, rt)
		b.St(1, scratchLO, isa.RegZero)
		b.St(isa.RegZero, scratchHI, isa.RegZero)
	case "div", "divu":
		switch n {
		case 2: // div rs, rt -> LO=quot, HI=rem
			rs, err := t.reg(s.line, s.args[0])
			if err != nil {
				return err
			}
			rt, err := t.reg(s.line, s.args[1])
			if err != nil {
				return err
			}
			b.Div(1, rs, rt)
			b.St(1, scratchLO, isa.RegZero)
			b.Mod(1, rs, rt)
			b.St(1, scratchHI, isa.RegZero)
		case 3: // pseudo div rd, rs, rt
			rd, err := t.reg(s.line, s.args[0])
			if err != nil {
				return err
			}
			rs, err := t.reg(s.line, s.args[1])
			if err != nil {
				return err
			}
			rt, err := t.reg(s.line, s.args[2])
			if err != nil {
				return err
			}
			b.Div(rd, rs, rt)
		default:
			return t.errf(s.line, "div: want 2 or 3 operands")
		}
	case "mflo", "mfhi":
		if err := need(1); err != nil {
			return err
		}
		rd, err := t.reg(s.line, s.args[0])
		if err != nil {
			return err
		}
		addr := int64(scratchLO)
		if s.op == "mfhi" {
			addr = scratchHI
		}
		b.Ld(rd, addr, isa.RegZero)
	case "beq", "bne":
		if err := need(3); err != nil {
			return err
		}
		rs, err := t.reg(s.line, s.args[0])
		if err != nil {
			return err
		}
		if strings.HasPrefix(strings.TrimSpace(s.args[1]), "$") {
			rt, err := t.reg(s.line, s.args[1])
			if err != nil {
				return err
			}
			if s.op == "beq" {
				b.Beq(rs, rt, s.args[2])
			} else {
				b.Bne(rs, rt, s.args[2])
			}
			return nil
		}
		imm, err := t.immOrLabel(s.line, s.args[1])
		if err != nil {
			return err
		}
		if s.op == "beq" {
			b.Beqi(rs, imm, s.args[2])
		} else {
			b.Bnei(rs, imm, s.args[2])
		}
	case "b", "j":
		if err := need(1); err != nil {
			return err
		}
		b.Jmp(s.args[0])
	case "jal":
		if err := need(1); err != nil {
			return err
		}
		b.Jal(s.args[0])
	case "jr":
		if err := need(1); err != nil {
			return err
		}
		rs, err := t.reg(s.line, s.args[0])
		if err != nil {
			return err
		}
		b.Jr(rs)
	case "syscall":
		t.emitSyscall()
	default:
		return t.errf(s.line, "unsupported instruction %q", s.op)
	}
	return nil
}

func setCmpRegOp(c isa.Cmp) isa.Op {
	switch c {
	case isa.CmpGe:
		return isa.OpSetge
	case isa.CmpGt:
		return isa.OpSetgt
	case isa.CmpLe:
		return isa.OpSetle
	case isa.CmpLt:
		return isa.OpSetlt
	}
	return isa.OpSeteq
}

func setCmpImmOp(c isa.Cmp) isa.Op {
	switch c {
	case isa.CmpGe:
		return isa.OpSetgei
	case isa.CmpGt:
		return isa.OpSetgti
	case isa.CmpLe:
		return isa.OpSetlei
	case isa.CmpLt:
		return isa.OpSetlti
	}
	return isa.OpSeteqi
}

// emitSyscall expands a SPIM syscall into an inline dispatch on $v0.
func (t *translator) emitSyscall() {
	b := t.b
	k := t.sysCount
	t.sysCount++
	pfx := fmt.Sprintf("__sys%d", k)

	b.Beqi(2, 1, pfx+"_pint")   // print_int($a0)
	b.Beqi(2, 4, pfx+"_pstr")   // print_string(*$a0..)
	b.Beqi(2, 5, pfx+"_rint")   // $v0 = read_int()
	b.Beqi(2, 10, pfx+"_exit")  // exit
	b.Beqi(2, 11, pfx+"_pchar") // print_char($a0)
	b.Throw("unsupported syscall")

	b.Label(pfx + "_pint")
	b.Print(4)
	b.Jmp(pfx + "_done")

	b.Label(pfx + "_pstr")
	b.St(4, scratchSysA0, isa.RegZero) // save $a0
	b.Label(pfx + "_ploop")
	b.Ld(1, 0, 4)
	b.Beqi(1, 0, pfx+"_pdone")
	b.Print(1)
	b.Addi(4, 4, 1)
	b.Jmp(pfx + "_ploop")
	b.Label(pfx + "_pdone")
	b.Ld(4, scratchSysA0, isa.RegZero) // restore $a0
	b.Jmp(pfx + "_done")

	b.Label(pfx + "_rint")
	b.Read(2)
	b.Jmp(pfx + "_done")

	b.Label(pfx + "_exit")
	b.Halt()

	b.Label(pfx + "_pchar")
	b.Print(4)

	b.Label(pfx + "_done")
}
