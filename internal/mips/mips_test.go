package mips

import (
	"testing"

	"symplfied/internal/machine"
)

// factorialMIPS computes n! reading n from stdin and printing the result —
// the paper's running example, authored in the MIPS dialect.
const factorialMIPS = `
	.text
main:
	li   $v0, 5          # read_int
	syscall
	move $t0, $v0        # n
	li   $t1, 1          # product
loop:
	ble  $t0, 1, done
	mul  $t1, $t1, $t0
	addi $t0, $t0, -1
	j    loop
done:
	move $a0, $t1
	li   $v0, 1          # print_int
	syscall
	li   $v0, 10         # exit
	syscall
`

func runMIPS(t *testing.T, src string, input []int64) machine.Result {
	t.Helper()
	prog, err := Translate("test", src)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(prog, input, machine.Options{})
	return m.Run()
}

func wantSingleOutput(t *testing.T, res machine.Result, want int64) {
	t.Helper()
	if res.Status != machine.StatusHalted {
		t.Fatalf("status %v (%v)", res.Status, res.Exception)
	}
	vals := machine.OutputValues(res.Output)
	if len(vals) != 1 {
		t.Fatalf("printed %v, want one value", vals)
	}
	if v, ok := vals[0].Concrete(); !ok || v != want {
		t.Fatalf("printed %v, want %d", vals[0], want)
	}
}

func TestFactorial(t *testing.T) {
	for _, c := range []struct{ n, want int64 }{{0, 1}, {1, 1}, {5, 120}, {10, 3628800}} {
		wantSingleOutput(t, runMIPS(t, factorialMIPS, []int64{c.n}), c.want)
	}
}

func TestDataSegmentAndPrintString(t *testing.T) {
	src := `
	.data
msg:	.asciiz "hi"
val:	.word 42
arr:	.word 1, 2, 3
	.text
main:
	la   $a0, msg
	li   $v0, 4          # print_string
	syscall
	lw   $a0, val
	li   $v0, 1
	syscall
	la   $t0, arr
	lw   $a0, 2($t0)     # arr[2] (word-addressed)
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall
`
	res := runMIPS(t, src, nil)
	if res.Status != machine.StatusHalted {
		t.Fatalf("status %v (%v)", res.Status, res.Exception)
	}
	vals := machine.OutputValues(res.Output)
	want := []int64{'h', 'i', 42, 3}
	if len(vals) != len(want) {
		t.Fatalf("printed %v, want %v", vals, want)
	}
	for i, w := range want {
		if v, ok := vals[i].Concrete(); !ok || v != w {
			t.Fatalf("output[%d] = %v, want %d", i, vals[i], w)
		}
	}
}

func TestCallAndStack(t *testing.T) {
	// sum(a,b) through a call with a stack frame; checks jal/jr and sw/lw.
	src := `
	.text
main:
	li   $sp, 1000
	li   $a0, 30
	li   $a1, 12
	jal  sum
	move $a0, $v0
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall
sum:
	addi $sp, $sp, -1
	sw   $ra, 0($sp)
	add  $v0, $a0, $a1
	lw   $ra, 0($sp)
	addi $sp, $sp, 1
	jr   $ra
`
	wantSingleOutput(t, runMIPS(t, src, nil), 42)
}

func TestDivMultHiLo(t *testing.T) {
	src := `
	.text
main:
	li   $t0, 47
	li   $t1, 5
	div  $t0, $t1        # LO = 9, HI = 2
	mflo $a0
	li   $v0, 1
	syscall
	mfhi $a0
	li   $v0, 1
	syscall
	mult $t0, $t1        # LO = 235
	mflo $a0
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall
`
	res := runMIPS(t, src, nil)
	vals := machine.OutputValues(res.Output)
	want := []int64{9, 2, 235}
	if len(vals) != 3 {
		t.Fatalf("printed %v, want %v", vals, want)
	}
	for i, w := range want {
		if v, ok := vals[i].Concrete(); !ok || v != w {
			t.Fatalf("output[%d] = %v, want %d", i, vals[i], w)
		}
	}
}

func TestBranchPseudos(t *testing.T) {
	src := `
	.text
main:
	li   $t0, 3
	li   $t1, 7
	blt  $t0, $t1, less
	li   $a0, 0
	j    print
less:
	li   $a0, 1
print:
	li   $v0, 1
	syscall
	bgez $zero, ok
	li   $v0, 10
	syscall
ok:
	li   $a0, 2
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall
`
	res := runMIPS(t, src, nil)
	vals := machine.OutputValues(res.Output)
	if len(vals) != 2 {
		t.Fatalf("printed %v", vals)
	}
	if v, _ := vals[0].Concrete(); v != 1 {
		t.Errorf("blt path printed %v, want 1", vals[0])
	}
	if v, _ := vals[1].Concrete(); v != 2 {
		t.Errorf("bgez path printed %v, want 2", vals[1])
	}
}

func TestTranslateErrors(t *testing.T) {
	cases := []string{
		"\t.text\nmain:\n\tfoo $t0, $t1\n",
		"\t.text\nmain:\n\tlw $t0\n",
		"\t.text\nmain:\n\tla $t0, nolabel\n",
		"\t.data\nx:\t.double 1.5\n",
	}
	for _, src := range cases {
		if _, err := Translate("bad", src); err == nil {
			t.Errorf("Translate(%q) succeeded, want error", src)
		}
	}
}
