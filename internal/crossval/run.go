package crossval

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"symplfied/internal/campaign"
	"symplfied/internal/obs"
	"symplfied/internal/simplescalar"
)

// Live campaign counters on the default registry, scraped by -metrics-addr
// and the progress reporter.
var (
	liveTrials  = obs.Default().Counter(obs.MXvalTrials)
	liveKills   = obs.Default().Counter(obs.MXvalKills)
	liveRetries = obs.Default().Counter(obs.MXvalRetries)
	livePoints  = obs.Default().Counter(obs.MXvalPoints)

	liveMismatch = map[Class]*obs.Counter{
		SymbolicMiss: obs.Default().Counter(obs.MXvalMismatches, obs.L("class", SymbolicMiss.String())),
		ConcreteMiss: obs.Default().Counter(obs.MXvalMismatches, obs.L("class", ConcreteMiss.String())),
		ClassDrift:   obs.Default().Counter(obs.MXvalMismatches, obs.L("class", ClassDrift.String())),
	}
)

// maxConcreteMissExamples caps the expected-mismatch examples carried in a
// merged report; the ByClass tally always counts all of them. The alarms
// (SymbolicMiss, ClassDrift) are never capped.
const maxConcreteMissExamples = 100

// journalKind tags crossval checkpoint journals, so they can never be
// confused with symbolic or concrete campaign journals.
const journalKind = "crossval"

// Config carries the operational knobs of a sweep — none of them affect
// verdicts or report bytes.
type Config struct {
	// Parallelism is the worker count; <= 0 selects GOMAXPROCS.
	Parallelism int
	// Checkpoint journals every settled point to this path; empty disables.
	Checkpoint string
	// Resume skips points the journal already records.
	Resume bool
	// OnPoint, if non-nil, observes progress (settled, total).
	OnPoint func(done, total int)
}

// Report is the deterministic campaign summary: for a given Spec its JSON
// encoding is byte-identical whether the sweep ran sequentially, in
// parallel, or split across a distributed fleet.
type Report struct {
	Program      string
	Fingerprint  string
	Seed         int64
	RandomPerReg int
	Watchdog     int
	StateBudget  int
	// Points counts cross-validated sites; NotActivated the subset whose
	// fault-free run never reaches the site.
	Points       int
	NotActivated int
	// Skipped counts points abandoned to infrastructure failures.
	Skipped int `json:",omitempty"`
	// Trials counts concrete injections executed; Agreements the trials the
	// symbolic terminal set covers.
	Trials     int
	Agreements int
	// ByClass tallies every mismatch by class name.
	ByClass map[string]int
	// InconclusivePoints counts points whose symbolic exploration was
	// incomplete (their mismatches cannot convict).
	InconclusivePoints int
	// Mismatches carries the repros: every SymbolicMiss and ClassDrift, and
	// up to maxConcreteMissExamples ConcreteMiss examples
	// (ConcreteMissesElided counts the rest).
	Mismatches           []Mismatch `json:",omitempty"`
	ConcreteMissesElided int        `json:",omitempty"`
	SymStates            int
	TimeoutKills         int  `json:",omitempty"`
	Retries              int  `json:",omitempty"`
	Interrupted          bool `json:",omitempty"`
	Resumed              int  `json:",omitempty"`
}

// Sound reports the harness verdict: no conclusive SymbolicMiss. Inconclusive
// misses (incomplete symbolic exploration) do not refute soundness.
func (r *Report) Sound() bool {
	for _, m := range r.Mismatches {
		if m.Class == SymbolicMiss && !m.Inconclusive {
			return false
		}
	}
	return true
}

// Summary renders the one-line verdict.
func (r *Report) Summary() string {
	verdict := "SOUND"
	if !r.Sound() {
		verdict = "UNSOUND"
	}
	return fmt.Sprintf("crossval %s: %d points, %d trials, %d agreements, mismatches %v (inconclusive points %d)",
		verdict, r.Points, r.Trials, r.Agreements, r.ByClass, r.InconclusivePoints)
}

// pointKey is the journal key of a point.
func pointKey(pt simplescalar.Point) string {
	return fmt.Sprintf("@%d %s dst=%v", pt.PC, pt.Reg, pt.Dst)
}

// RunPointCtx cross-validates a single injection point: one memoized
// symbolic exploration, then one concrete trial per PointValues entry with
// panic isolation, kill-on-deadline and bounded retries, then the diff.
func RunPointCtx(ctx context.Context, spec Spec, pt simplescalar.Point, memo *symMemo) PointReport {
	if memo == nil {
		memo = newSymMemo()
	}
	sum, err := memo.explore(ctx, spec, pt)
	if ctx.Err() != nil {
		return PointReport{Point: pt, Interrupted: true}
	}
	if err != nil {
		return PointReport{Point: pt, Skipped: err.Error()}
	}
	ccfg := simplescalar.Config{
		Program:   spec.Program,
		Input:     spec.Input,
		Detectors: spec.Detectors,
		Watchdog:  spec.watchdog(),
	}
	values := simplescalar.PointValues(spec.Seed, pt, spec.RandomPerReg)
	trials := make([]trialRun, 0, len(values))
	for i, v := range values {
		inj := simplescalar.Injection{Point: pt, Value: v}
		var tr simplescalar.Trial
		retries := 0
		for attempt := 0; ; attempt++ {
			tctx := ctx
			cancel := context.CancelFunc(func() {})
			if spec.PerTrialTimeout > 0 {
				tctx, cancel = context.WithTimeout(ctx, spec.PerTrialTimeout)
			}
			tr = simplescalar.TrialCtx(tctx, ccfg, inj)
			cancel()
			liveTrials.Inc()
			// The parent context ending aborts the point, whether the trial
			// saw it as an interruption or as a deadline kill.
			if ctx.Err() != nil {
				return PointReport{Point: pt, Interrupted: true}
			}
			if tr.Killed {
				liveKills.Inc()
			}
			if tr.Panicked && attempt < spec.Retries {
				retries++
				liveRetries.Inc()
				continue
			}
			break
		}
		trials = append(trials, trialRun{Value: v, Index: i, Trial: tr, Retries: retries})
	}
	pr := diffPoint(spec, pt, sum, trials)
	livePoints.Inc()
	for _, m := range pr.Mismatches {
		if c := liveMismatch[m.Class]; c != nil {
			c.Inc()
		}
	}
	return pr
}

// RunPointsCtx cross-validates exactly the given points — a distributed
// task. Reports come back in input order; interrupted is true when
// cancellation abandoned the task before every point settled.
func RunPointsCtx(ctx context.Context, spec Spec, pts []simplescalar.Point, parallelism int) (reports []PointReport, interrupted bool) {
	results := make([]*PointReport, len(pts))
	var wasInterrupted atomic.Bool
	memo := newSymMemo()
	sweep(ctx, parallelism, len(pts), func(i int) {
		pr := RunPointCtx(ctx, spec, pts[i], memo)
		if pr.Interrupted {
			wasInterrupted.Store(true)
			return
		}
		results[i] = &pr
	})
	for _, pr := range results {
		if pr != nil {
			reports = append(reports, *pr)
		}
	}
	return reports, wasInterrupted.Load() || ctx.Err() != nil
}

// sweep runs fn(0..n-1) over a bounded worker pool.
func sweep(ctx context.Context, parallelism, n int, fn func(i int)) {
	par := parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain
				}
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// Run executes the whole campaign with default operational settings.
func Run(spec Spec) (*Report, error) {
	return RunCtx(context.Background(), spec, Config{})
}

// RunCtx executes the whole cross-validation campaign under ctx with
// checkpoint/resume support. Cancellation returns the partial report with
// Interrupted set.
func RunCtx(ctx context.Context, spec Spec, cfg Config) (*Report, error) {
	if spec.Program == nil {
		return nil, fmt.Errorf("crossval: nil program")
	}
	pts := spec.Points()
	fp := Fingerprint(spec)

	journaled := map[string]json.RawMessage{}
	if cfg.Resume {
		if cfg.Checkpoint == "" {
			return nil, fmt.Errorf("crossval: Resume requires a Checkpoint path")
		}
		var err error
		journaled, err = campaign.LoadJournal(cfg.Checkpoint, journalKind, fp)
		if err != nil {
			return nil, err
		}
	}
	var journal *campaign.Journal
	if cfg.Checkpoint != "" {
		var err error
		journal, err = campaign.OpenJournal(cfg.Checkpoint, journalKind, fp)
		if err != nil {
			return nil, err
		}
		defer journal.Close()
	}

	results := make([]*PointReport, len(pts))
	resumed := 0
	var todo []int
	for i, pt := range pts {
		if raw, ok := journaled[pointKey(pt)]; ok {
			var pr PointReport
			if err := json.Unmarshal(raw, &pr); err == nil {
				results[i] = &pr
				resumed++
				continue
			}
		}
		todo = append(todo, i)
	}

	var done atomic.Int64
	done.Store(int64(resumed))
	var journalMu sync.Mutex
	var journalErr error
	var wasInterrupted atomic.Bool
	memo := newSymMemo()
	sweep(ctx, cfg.Parallelism, len(todo), func(ti int) {
		i := todo[ti]
		pr := RunPointCtx(ctx, spec, pts[i], memo)
		if pr.Interrupted {
			wasInterrupted.Store(true)
			return
		}
		results[i] = &pr
		if journal != nil {
			if err := journal.Append(pointKey(pts[i]), pr); err != nil {
				journalMu.Lock()
				if journalErr == nil {
					journalErr = err
				}
				journalMu.Unlock()
			}
		}
		if cfg.OnPoint != nil {
			cfg.OnPoint(int(done.Add(1)), len(pts))
		}
	})

	var settled []PointReport
	for _, pr := range results {
		if pr != nil {
			settled = append(settled, *pr)
		}
	}
	rep := Merge(spec, settled)
	rep.Interrupted = wasInterrupted.Load() || ctx.Err() != nil
	rep.Resumed = resumed
	if journalErr != nil {
		return rep, fmt.Errorf("crossval: checkpoint write failed: %w", journalErr)
	}
	return rep, nil
}

// Merge folds point reports into the campaign report. It is pure and
// deterministic: reports are first sorted into the canonical point order, so
// every partitioning of the sweep — sequential, parallel, or a distributed
// fleet — merges to byte-identical JSON.
func Merge(spec Spec, prs []PointReport) *Report {
	sorted := make([]PointReport, len(prs))
	copy(sorted, prs)
	sort.SliceStable(sorted, func(i, j int) bool { return pointLess(sorted[i].Point, sorted[j].Point) })

	rep := &Report{
		Program:      spec.Program.Name,
		Fingerprint:  Fingerprint(spec),
		Seed:         spec.Seed,
		RandomPerReg: spec.randomPer(),
		Watchdog:     spec.watchdog(),
		StateBudget:  spec.budget(),
		ByClass:      make(map[string]int),
	}
	for _, pr := range sorted {
		rep.Points++
		if pr.Skipped != "" {
			rep.Skipped++
			continue
		}
		if !pr.Activated {
			rep.NotActivated++
		}
		if !pr.Sym.Complete {
			rep.InconclusivePoints++
		}
		rep.SymStates += pr.Sym.States
		rep.TimeoutKills += pr.Killed
		rep.Retries += pr.Retries + pr.Sym.Retries
		for _, tr := range pr.Trials {
			rep.Trials++
			if tr.Covered {
				rep.Agreements++
			}
		}
		for _, m := range pr.Mismatches {
			rep.ByClass[m.Class.String()]++
			if m.Class == ConcreteMiss {
				if rep.ByClass[ConcreteMiss.String()] > maxConcreteMissExamples {
					rep.ConcreteMissesElided++
					continue
				}
			}
			rep.Mismatches = append(rep.Mismatches, m)
		}
	}
	return rep
}
