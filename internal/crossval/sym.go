package crossval

import (
	"context"
	"fmt"
	"sync"

	"symplfied/internal/checker"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/machine"
	"symplfied/internal/simplescalar"
	"symplfied/internal/symexec"
)

// maxNormalOutputs bounds the unique normal-termination outputs collected
// per point. Overflowing the bound marks the summary incomplete, so coverage
// claims degrade to Inconclusive instead of false alarms.
const maxNormalOutputs = 8192

// dropTerminal is a test-only hook that discards terminal states from the
// symbolic summary before coverage is computed, simulating an unsound
// pruning. The acceptance test for the harness sets it (via export_test.go)
// and asserts the resulting SymbolicMiss carries a full repro. Always nil in
// production.
var dropTerminal func(pt simplescalar.Point, st *symexec.State) bool

// symSummary is the digest of one point's symbolic exploration that the
// differ needs: the terminal outcome tally, the set of coverable normal
// outputs, and whether the terminal set is exhaustive.
type symSummary struct {
	Activated bool
	// Complete is true when every terminal of the injection was enumerated:
	// no budget exhaustion, fan-out truncation, deadline expiry, panic or
	// output-set overflow. Only then can a missing coverage convict.
	Complete bool
	States   int
	Outcomes map[symexec.Outcome]int
	// NormalOutputs holds the distinct output streams of normally-halted
	// terminals; a symbolic err item abstracts any concrete value.
	NormalOutputs [][]machine.OutItem
	// Exemplars holds one rendered terminal description per outcome class.
	Exemplars map[symexec.Outcome]string
	Retries   int
}

// symInjection is the symbolic fault equivalent to a concrete trial at pt:
// err into the register just before the first dynamic execution of the
// instruction. Source and destination sites at the same (pc, reg) are the
// same symbolic experiment.
func symInjection(pt simplescalar.Point) faults.Injection {
	return faults.Injection{
		Class:      faults.ClassRegister,
		PC:         pt.PC,
		Occurrence: 1,
		Loc:        isa.RegLoc(pt.Reg),
	}
}

// exploreSymbolic enumerates the symbolic terminal set of one point, with
// the campaign runner's transient-failure policy: a panicked or deadlined
// exploration is retried up to spec.Retries times with Degraded options and
// a halved state budget.
func exploreSymbolic(ctx context.Context, spec Spec, pt simplescalar.Point) (*symSummary, error) {
	inj := symInjection(pt)
	budget := spec.budget()
	var lastErr error
	for attempt := 0; attempt <= spec.Retries; attempt++ {
		sum := &symSummary{
			Outcomes:  make(map[symexec.Outcome]int),
			Exemplars: make(map[symexec.Outcome]string),
		}
		seenOutputs := make(map[string]bool)
		overflow := false
		collect := func(st *symexec.State) bool {
			if dropTerminal != nil && dropTerminal(pt, st) {
				return false
			}
			o := st.Outcome()
			sum.Outcomes[o]++
			if _, ok := sum.Exemplars[o]; !ok {
				sum.Exemplars[o] = fmt.Sprintf("%s → %s output=%q sym=%s", inj, o, st.OutputString(), st.Sym.Describe())
			}
			if o == symexec.OutcomeNormal {
				key := renderKey(st.Out)
				if !seenOutputs[key] {
					if len(sum.NormalOutputs) >= maxNormalOutputs {
						overflow = true
					} else {
						seenOutputs[key] = true
						sum.NormalOutputs = append(sum.NormalOutputs, copyOut(st.Out))
					}
				}
			}
			return false
		}
		cs := checker.Spec{
			Program:   spec.Program,
			Detectors: spec.Detectors,
			Input:     spec.Input,
			Exec: symexec.Options{
				Watchdog:       spec.watchdog(),
				AffineTracking: true,
			}.Degraded(attempt),
			Predicate:           checker.Predicate{Name: "crossval-collect", Match: collect},
			StateBudget:         budget,
			PerInjectionTimeout: spec.PerTrialTimeout,
			DiscardStates:       true,
		}
		ir, err := checker.RunInjectionCtx(ctx, cs, inj)
		if err != nil {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		transient := ir.Panicked || (ir.TimedOut && ir.Error == "")
		if transient && attempt < spec.Retries {
			budget = budget / 2
			if budget < 1 {
				budget = 1
			}
			liveRetries.Inc()
			lastErr = fmt.Errorf("crossval: symbolic exploration of %s transiently failed (panicked=%v timedOut=%v)", inj, ir.Panicked, ir.TimedOut)
			continue
		}
		if ir.Panicked {
			return nil, fmt.Errorf("crossval: symbolic exploration of %s panicked: %s", inj, ir.PanicValue)
		}
		if ir.Error != "" {
			return nil, fmt.Errorf("crossval: symbolic exploration of %s failed: %s", inj, ir.Error)
		}
		sum.Activated = ir.Activated
		sum.States = ir.StatesExplored
		sum.Complete = ir.Activated &&
			!ir.BudgetExhausted && !ir.Truncated && !ir.Interrupted &&
			!ir.TimedOut && !overflow && attempt == 0
		if !ir.Activated {
			sum.Complete = true // no terminals to enumerate: trivially exhaustive
		}
		sum.Retries = attempt
		return sum, nil
	}
	return nil, lastErr
}

// renderKey is the dedup key of a normal output stream: the rendered text
// plus an err marker per item, so "print err" and "print 0" never collide.
func renderKey(out []machine.OutItem) string {
	key := make([]byte, 0, 32)
	for _, o := range out {
		if o.IsStr {
			key = append(key, 's')
			key = append(key, o.Str...)
		} else if o.Val.IsErr() {
			key = append(key, 'e')
		} else {
			key = append(key, 'v')
			key = append(key, o.Val.String()...)
		}
		key = append(key, 0)
	}
	return string(key)
}

// copyOut snapshots an output stream (clones may share backing arrays).
func copyOut(out []machine.OutItem) []machine.OutItem {
	cp := make([]machine.OutItem, len(out))
	copy(cp, out)
	return cp
}

// symMemo shares symbolic summaries between source and destination sites of
// the same (pc, reg) within one sweep: the symbolic experiment is identical,
// so exploring it twice would only burn budget. Exploration is deterministic,
// so memoization cannot change any verdict.
type symMemo struct {
	mu sync.Mutex
	m  map[symMemoKey]*symMemoEntry
}

type symMemoKey struct {
	pc  int
	reg isa.Reg
}

type symMemoEntry struct {
	once sync.Once
	sum  *symSummary
	err  error
}

func newSymMemo() *symMemo {
	return &symMemo{m: make(map[symMemoKey]*symMemoEntry)}
}

func (mm *symMemo) explore(ctx context.Context, spec Spec, pt simplescalar.Point) (*symSummary, error) {
	key := symMemoKey{pc: pt.PC, reg: pt.Reg}
	mm.mu.Lock()
	entry, ok := mm.m[key]
	if !ok {
		entry = &symMemoEntry{}
		mm.m[key] = entry
	}
	mm.mu.Unlock()
	entry.once.Do(func() {
		entry.sum, entry.err = exploreSymbolic(ctx, spec, pt)
	})
	return entry.sum, entry.err
}
