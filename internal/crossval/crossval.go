// Package crossval is the concrete↔symbolic differential-testing harness:
// it runs the randomized concrete injection campaign of the paper's
// SimpleScalar baseline (Section 6.3 — extreme and seeded random values into
// every source and destination register) and continuously diffs each
// concrete outcome against the symbolic verdict for the same
// (program, pc, reg, value) point.
//
// The paper's core claim (Tables 2-4) is that symbolic enumeration of err
// dominates concrete injection: every outcome a concrete value can produce
// corresponds to a terminal state of the symbolic exploration of the same
// site. Cross-validation checks that claim mechanically, so any disagreement
// is an engine bug or an unsound pruning:
//
//   - SymbolicMiss: the concrete run halted with an output no symbolic
//     terminal covers — the symbolic engine claimed that corruption was
//     impossible. This is unsoundness and fails CI.
//   - ConcreteMiss: a symbolic outcome class no concrete trial produced —
//     expected, the symbolic engine is strictly stronger (Table 2's point).
//   - ClassDrift: the concrete crash/hang/detect class is absent from the
//     symbolic terminal set, or the two engines disagree on whether the
//     injection point was even reached.
//
// Mismatches recorded while the symbolic exploration was incomplete (budget
// exhausted, fan-out truncated, deadline expired) are flagged Inconclusive:
// the terminal set is a sound subset, so absence of coverage proves nothing.
//
// Everything is deterministic by construction: random values are derived by
// hashing (seed, site, index) — see simplescalar.PointValues — per-point
// state budgets replace wall clocks, and reports merge in canonical point
// order, so a single process and a distributed fleet produce byte-identical
// reports for the same spec.
package crossval

import (
	"fmt"
	"sort"
	"time"

	"symplfied/internal/checker"
	"symplfied/internal/detector"
	"symplfied/internal/fingerprint"
	"symplfied/internal/isa"
	"symplfied/internal/machine"
	"symplfied/internal/simplescalar"
	"symplfied/internal/symexec"
)

// Spec describes one cross-validation campaign. The zero values of the
// knobs resolve to the paper's baseline policy: three extremes plus three
// random values per site, the shared default watchdog, and the checker's
// default per-injection state budget.
type Spec struct {
	Program   *isa.Program
	Detectors *detector.Table
	Input     []int64
	// Watchdog is the instruction budget shared verbatim by both engines
	// (hang classification agrees by construction); 0 selects
	// machine.DefaultWatchdog.
	Watchdog int
	// Seed drives the per-site random value derivation.
	Seed int64
	// RandomPerReg is the number of seeded random values per site on top of
	// the three extremes; <= 0 selects the paper's 3.
	RandomPerReg int
	// StateBudget bounds the symbolic exploration of each injection point;
	// 0 selects checker.DefaultStateBudget. Unlike the cluster's shared task
	// budgets this is per-point, so partitioning a campaign cannot change
	// any point's verdict.
	StateBudget int
	// PerTrialTimeout is the wall-clock deadline for one concrete trial
	// (killed runs are classified Hang) and for one symbolic exploration
	// (expired explorations are Inconclusive). 0 disables the wall clock,
	// which is also what byte-identical distributed runs require.
	PerTrialTimeout time.Duration
	// Retries bounds re-runs of transiently failed work (panics, expired
	// symbolic deadlines), mirroring the campaign runner's policy.
	Retries int
	// MaxPoints caps the campaign size; 0 sweeps every site.
	MaxPoints int
}

func (s Spec) watchdog() int {
	if s.Watchdog <= 0 {
		return machine.DefaultWatchdog
	}
	return s.Watchdog
}

func (s Spec) randomPer() int {
	if s.RandomPerReg <= 0 {
		return 3
	}
	return s.RandomPerReg
}

func (s Spec) budget() int {
	if s.StateBudget <= 0 {
		return checker.DefaultStateBudget
	}
	return s.StateBudget
}

// Points enumerates the campaign's injection sites (every source and
// destination register of every instruction, capped by MaxPoints).
func (s Spec) Points() []simplescalar.Point {
	pts := simplescalar.EnumeratePoints(s.Program)
	if s.MaxPoints > 0 && len(pts) > s.MaxPoints {
		pts = pts[:s.MaxPoints]
	}
	return pts
}

// Fingerprint hashes the campaign identity: everything that determines
// verdicts. Operational knobs (parallelism, wall clocks, retries) are
// excluded, so a resumed or distributed run validates against the same
// fingerprint.
func Fingerprint(s Spec) string {
	h := fingerprint.New()
	h.Line("crossval")
	h.Program(s.Program)
	h.Detectors(s.Detectors)
	h.Input(s.Input)
	h.Line("watchdog %d seed %d randomPerReg %d budget %d maxPoints %d",
		s.watchdog(), s.Seed, s.randomPer(), s.budget(), s.MaxPoints)
	return h.Sum()
}

// Class discriminates mismatch kinds.
type Class int

// Mismatch classes.
const (
	// SymbolicMiss: concrete corruption the symbolic terminal set does not
	// cover — unsoundness.
	SymbolicMiss Class = iota + 1
	// ConcreteMiss: a symbolic outcome no concrete trial reproduced —
	// expected (symbolic is strictly stronger).
	ConcreteMiss
	// ClassDrift: crash/hang/detect (or activation) disagreement between
	// the engines.
	ClassDrift
)

// String names the class as it appears in reports and metric labels.
func (c Class) String() string {
	switch c {
	case SymbolicMiss:
		return "symbolic-miss"
	case ConcreteMiss:
		return "concrete-miss"
	case ClassDrift:
		return "class-drift"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// MarshalText puts the class name on the wire.
func (c Class) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText parses a class name.
func (c *Class) UnmarshalText(b []byte) error {
	for _, k := range []Class{SymbolicMiss, ConcreteMiss, ClassDrift} {
		if string(b) == k.String() {
			*c = k
			return nil
		}
	}
	return fmt.Errorf("crossval: unknown mismatch class %q", b)
}

// ConcreteOutcome maps a concrete machine result into the symbolic outcome
// vocabulary, mirroring symexec.State.Outcome exactly.
func ConcreteOutcome(res machine.Result) symexec.Outcome {
	switch res.Status {
	case machine.StatusHalted:
		return symexec.OutcomeNormal
	case machine.StatusExcepted:
		if res.Exception != nil {
			switch res.Exception.Kind {
			case isa.ExcTimeout:
				return symexec.OutcomeHang
			case isa.ExcDetected:
				return symexec.OutcomeDetected
			}
		}
		return symexec.OutcomeCrash
	}
	return symexec.OutcomeRunning
}

// outputCovers reports whether a symbolic output stream covers a concrete
// one: same shape, string items equal, value items equal — with a symbolic
// err item abstracting every concrete value.
func outputCovers(sym, conc []machine.OutItem) bool {
	if len(sym) != len(conc) {
		return false
	}
	for i := range sym {
		s, c := sym[i], conc[i]
		if s.IsStr != c.IsStr {
			return false
		}
		if s.IsStr {
			if s.Str != c.Str {
				return false
			}
			continue
		}
		if s.Val.IsErr() {
			continue
		}
		sv, _ := s.Val.Concrete()
		cv, ok := c.Val.Concrete()
		if !ok || sv != cv {
			return false
		}
	}
	return true
}

// ConcreteEvidence is the concrete half of a mismatch repro.
type ConcreteEvidence struct {
	Outcome   symexec.Outcome
	Output    string
	Exception string `json:",omitempty"`
	Steps     int
	// TraceTail holds the last program counters executed, oldest first.
	TraceTail []int `json:",omitempty"`
	// Killed marks a trial stopped at the wall-clock deadline.
	Killed bool `json:",omitempty"`
}

// SymbolicEvidence is the symbolic half of a mismatch repro.
type SymbolicEvidence struct {
	// Injection is the canonical rendering of the symbolic fault.
	Injection string
	// Outcomes tallies the symbolic terminal states by class.
	Outcomes map[symexec.Outcome]int
	States   int
	// Complete reports whether the terminal set is exhaustive (no budget,
	// fan-out or deadline truncation). Incomplete sets make absence of
	// coverage inconclusive.
	Complete bool
	// Finding is one exemplar terminal description (outcome, output,
	// constraint store) when one is relevant to the mismatch.
	Finding string `json:",omitempty"`
}

// Mismatch is one disagreement between the engines, carrying the full repro.
type Mismatch struct {
	Class Class
	Point simplescalar.Point
	// Seed and Value (with its index into PointValues) reproduce the
	// concrete trial; ConcreteMiss entries have no trial and omit them.
	Seed       int64
	Value      int64 `json:",omitempty"`
	ValueIndex int   `json:",omitempty"`
	// Inconclusive marks a disagreement recorded while the symbolic terminal
	// set was incomplete: the mismatch is worth triaging but proves nothing.
	Inconclusive bool              `json:",omitempty"`
	Concrete     *ConcreteEvidence `json:",omitempty"`
	Symbolic     SymbolicEvidence
	// Repro is a human-oriented reproduction hint.
	Repro string
}

// TrialRecord is the journaled outcome of one concrete value trial.
type TrialRecord struct {
	Value   int64
	Outcome symexec.Outcome
	Output  string
	// Covered reports agreement: the symbolic terminal set accounts for
	// this concrete outcome.
	Covered  bool
	Killed   bool `json:",omitempty"`
	Panicked bool `json:",omitempty"`
	Retries  int  `json:",omitempty"`
}

// SymVerdict summarizes the symbolic exploration of one point.
type SymVerdict struct {
	Complete bool
	States   int
	Outcomes map[symexec.Outcome]int
	Retries  int `json:",omitempty"`
}

// PointReport is the cross-validation verdict for one injection site.
type PointReport struct {
	Point     simplescalar.Point
	Activated bool
	// Skipped carries the infrastructure failure that prevented
	// classification of this point (exhausted retries); empty otherwise.
	Skipped    string        `json:",omitempty"`
	Sym        SymVerdict    `json:",omitempty"`
	Trials     []TrialRecord `json:",omitempty"`
	Mismatches []Mismatch    `json:",omitempty"`
	// Killed and Retries count wall-clock kills and transient re-runs
	// across this point's concrete trials.
	Killed  int `json:",omitempty"`
	Retries int `json:",omitempty"`
	// Interrupted marks a point abandoned mid-sweep by cancellation; it is
	// never journaled or merged.
	Interrupted bool `json:"-"`
}

// pointLess is the canonical point order every merge path uses, so sweep
// partitioning can never reorder a report.
func pointLess(a, b simplescalar.Point) bool {
	if a.PC != b.PC {
		return a.PC < b.PC
	}
	if a.Dst != b.Dst {
		return !a.Dst // source sites before destination sites
	}
	return a.Reg < b.Reg
}

// trialRun pairs a value with its executed trial.
type trialRun struct {
	Value   int64
	Index   int
	Trial   simplescalar.Trial
	Retries int
}

// diffPoint classifies every concrete trial of one point against the
// symbolic summary, producing the point's verdict and mismatches.
func diffPoint(spec Spec, pt simplescalar.Point, sum *symSummary, trials []trialRun) PointReport {
	pr := PointReport{
		Point:     pt,
		Activated: sum.Activated,
		Sym: SymVerdict{
			Complete: sum.Complete,
			States:   sum.States,
			Outcomes: sum.Outcomes,
			Retries:  sum.Retries,
		},
	}
	symEvidence := func(outcome symexec.Outcome) SymbolicEvidence {
		return SymbolicEvidence{
			Injection: symInjection(pt).String(),
			Outcomes:  sum.Outcomes,
			States:    sum.States,
			Complete:  sum.Complete,
			Finding:   sum.Exemplars[outcome],
		}
	}
	seen := make(map[symexec.Outcome]bool)
	for _, tr := range trials {
		rec := TrialRecord{
			Value:    tr.Value,
			Outcome:  ConcreteOutcome(tr.Trial.Result),
			Output:   machine.RenderOutput(tr.Trial.Result.Output),
			Killed:   tr.Trial.Killed,
			Panicked: tr.Trial.Panicked,
			Retries:  tr.Retries,
		}
		if tr.Trial.Killed {
			pr.Killed++
		}
		pr.Retries += tr.Retries
		if tr.Trial.Panicked {
			// Persistent interpreter panic: infrastructure, not a verdict.
			pr.Trials = append(pr.Trials, rec)
			continue
		}
		seen[rec.Outcome] = true

		var mismatch *Mismatch
		switch {
		case tr.Trial.Activated != sum.Activated:
			// The engines share the fault-free prefix, so activation drift
			// is an engine bug regardless of exploration completeness.
			mismatch = &Mismatch{Class: ClassDrift}
		case !sum.Activated:
			// Fault never manifested in either engine: nothing to diff.
			rec.Covered = true
		case rec.Outcome == symexec.OutcomeNormal:
			for _, out := range sum.NormalOutputs {
				if outputCovers(out, tr.Trial.Result.Output) {
					rec.Covered = true
					break
				}
			}
			if !rec.Covered {
				mismatch = &Mismatch{Class: SymbolicMiss, Inconclusive: !sum.Complete}
			}
		default:
			rec.Covered = sum.Outcomes[rec.Outcome] > 0
			if !rec.Covered {
				mismatch = &Mismatch{Class: ClassDrift, Inconclusive: !sum.Complete}
			}
		}
		if mismatch != nil {
			mismatch.Point = pt
			mismatch.Seed = spec.Seed
			mismatch.Value = tr.Value
			mismatch.ValueIndex = tr.Index
			mismatch.Concrete = &ConcreteEvidence{
				Outcome:   rec.Outcome,
				Output:    rec.Output,
				Steps:     tr.Trial.Result.Steps,
				TraceTail: tr.Trial.TraceTail,
				Killed:    tr.Trial.Killed,
			}
			if exc := tr.Trial.Result.Exception; exc != nil {
				mismatch.Concrete.Exception = exc.Error()
			}
			mismatch.Symbolic = symEvidence(rec.Outcome)
			mismatch.Repro = repro(spec, pt, tr.Value, tr.Index)
			pr.Mismatches = append(pr.Mismatches, *mismatch)
		}
		pr.Trials = append(pr.Trials, rec)
	}

	// Symbolic outcome classes no concrete trial reproduced: expected, the
	// symbolic engine is strictly stronger — recorded as ConcreteMiss.
	if sum.Activated {
		for _, outcome := range sortedOutcomes(sum.Outcomes) {
			if seen[outcome] {
				continue
			}
			pr.Mismatches = append(pr.Mismatches, Mismatch{
				Class:    ConcreteMiss,
				Point:    pt,
				Seed:     spec.Seed,
				Symbolic: symEvidence(outcome),
				Repro:    repro(spec, pt, 0, -1),
			})
		}
	}
	return pr
}

// sortedOutcomes orders an outcome tally's keys deterministically.
func sortedOutcomes(m map[symexec.Outcome]int) []symexec.Outcome {
	out := make([]symexec.Outcome, 0, len(m))
	for o := range m {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// repro renders the human-oriented reproduction hint of a mismatch.
func repro(spec Spec, pt simplescalar.Point, value int64, index int) string {
	site := fmt.Sprintf("@%d %s dst=%v", pt.PC, pt.Reg, pt.Dst)
	if index < 0 {
		return fmt.Sprintf("symplfied -crossval -crossval-seed %d (program %s, point %s: no concrete trial hit this symbolic outcome)",
			spec.Seed, spec.Program.Name, site)
	}
	return fmt.Sprintf("symplfied -crossval -crossval-seed %d (program %s, point %s, value %d = PointValues[%d])",
		spec.Seed, spec.Program.Name, site, value, index)
}
