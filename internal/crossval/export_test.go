package crossval

import (
	"symplfied/internal/simplescalar"
	"symplfied/internal/symexec"
)

// SetDropTerminalForTest installs a terminal filter that discards symbolic
// terminal states before coverage is computed, simulating an unsound pruning
// bug in the engine. It returns a restore function; callers must defer it.
func SetDropTerminalForTest(f func(pt simplescalar.Point, st *symexec.State) bool) (restore func()) {
	old := dropTerminal
	dropTerminal = f
	return func() { dropTerminal = old }
}
