package crossval

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"symplfied/internal/asm"
	"symplfied/internal/isa"
	"symplfied/internal/machine"
	"symplfied/internal/simplescalar"
	"symplfied/internal/symexec"
)

// branchUnit reads one value and either prints it or — at one magic value no
// seeded trial draws — crashes on an undefined load. The symbolic sweep must
// enumerate both arms; the crash arm is reachable only symbolically, so the
// campaign also exercises the expected ConcreteMiss direction.
func branchUnit(t *testing.T) *isa.Program {
	t.Helper()
	u := asm.MustParse("branch", `
	read $1
	beqi $1 12345 boom
	print $1
	halt
boom:
	ld $2 7($0)
	halt
`)
	return u.Program
}

func branchSpec(t *testing.T) Spec {
	return Spec{
		Program:  branchUnit(t),
		Input:    []int64{7},
		Watchdog: 1000,
		Seed:     2008,
	}
}

func TestConcreteOutcomeMapping(t *testing.T) {
	cases := []struct {
		res  machine.Result
		want symexec.Outcome
	}{
		{machine.Result{Status: machine.StatusHalted}, symexec.OutcomeNormal},
		{machine.Result{Status: machine.StatusExcepted, Exception: &isa.Exception{Kind: isa.ExcTimeout}}, symexec.OutcomeHang},
		{machine.Result{Status: machine.StatusExcepted, Exception: &isa.Exception{Kind: isa.ExcDetected}}, symexec.OutcomeDetected},
		{machine.Result{Status: machine.StatusExcepted, Exception: &isa.Exception{Kind: isa.ExcIllegalAddr}}, symexec.OutcomeCrash},
		{machine.Result{Status: machine.StatusExcepted, Exception: &isa.Exception{Kind: isa.ExcDivZero}}, symexec.OutcomeCrash},
		{machine.Result{Status: machine.StatusRunning}, symexec.OutcomeRunning},
	}
	for _, c := range cases {
		if got := ConcreteOutcome(c.res); got != c.want {
			t.Errorf("ConcreteOutcome(%v) = %v, want %v", c.res, got, c.want)
		}
	}
}

func TestOutputCovers(t *testing.T) {
	val := func(v int64) machine.OutItem { return machine.OutItem{Val: isa.Int(v)} }
	str := func(s string) machine.OutItem { return machine.OutItem{IsStr: true, Str: s} }
	errItem := machine.OutItem{Val: isa.Err()}
	cases := []struct {
		sym, conc []machine.OutItem
		want      bool
	}{
		{nil, nil, true},
		{[]machine.OutItem{val(3)}, []machine.OutItem{val(3)}, true},
		{[]machine.OutItem{val(3)}, []machine.OutItem{val(4)}, false},
		{[]machine.OutItem{errItem}, []machine.OutItem{val(-17)}, true},
		{[]machine.OutItem{str("a")}, []machine.OutItem{str("a")}, true},
		{[]machine.OutItem{str("a")}, []machine.OutItem{str("b")}, false},
		{[]machine.OutItem{str("a")}, []machine.OutItem{val(1)}, false},
		{[]machine.OutItem{val(1), val(2)}, []machine.OutItem{val(1)}, false},
	}
	for i, c := range cases {
		if got := outputCovers(c.sym, c.conc); got != c.want {
			t.Errorf("case %d: outputCovers = %v, want %v", i, got, c.want)
		}
	}
}

// TestBranchUnitSound: the exhaustive sweep of a tiny branching unit agrees
// everywhere — the symbolic terminal set covers every concrete trial.
func TestBranchUnitSound(t *testing.T) {
	rep, err := Run(branchSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sound() {
		t.Fatalf("unsound: %s\n%+v", rep.Summary(), rep.Mismatches)
	}
	if rep.ByClass[SymbolicMiss.String()] != 0 || rep.ByClass[ClassDrift.String()] != 0 {
		t.Errorf("unexpected alarms: %v", rep.ByClass)
	}
	if rep.Trials == 0 || rep.Agreements != rep.Trials {
		t.Errorf("trials %d, agreements %d — want full agreement", rep.Trials, rep.Agreements)
	}
	if rep.InconclusivePoints != 0 {
		t.Errorf("%d inconclusive points on a tiny unit", rep.InconclusivePoints)
	}
	// The crash arm is hit symbolically; no concrete trial draws 12345, so
	// the campaign must record the expected ConcreteMiss direction.
	if rep.ByClass[ConcreteMiss.String()] == 0 {
		t.Error("no ConcreteMiss recorded — symbolic should be strictly stronger here")
	}
}

// reportBytes marshals a report with the run-history fields cleared, leaving
// exactly the deterministic payload.
func reportBytes(t *testing.T, rep *Report) []byte {
	t.Helper()
	cp := *rep
	cp.Resumed = 0
	b, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestReportByteIdentityAcrossPartitions: sequential, parallel and manually
// partitioned-and-merged sweeps must produce byte-identical reports — the
// property the distributed fleet relies on.
func TestReportByteIdentityAcrossPartitions(t *testing.T) {
	spec := branchSpec(t)
	ctx := context.Background()

	seq, err := RunCtx(ctx, spec, Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCtx(ctx, spec, Config{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Fleet-style: deal points round-robin into three tasks, sweep each
	// separately, merge the concatenated results in arrival order.
	pts := spec.Points()
	var pooled []PointReport
	for task := 0; task < 3; task++ {
		var mine []simplescalar.Point
		for i := task; i < len(pts); i += 3 {
			mine = append(mine, pts[i])
		}
		prs, interrupted := RunPointsCtx(ctx, spec, mine, 2)
		if interrupted {
			t.Fatal("task interrupted")
		}
		pooled = append(pooled, prs...)
	}
	merged := Merge(spec, pooled)

	a, b, c := reportBytes(t, seq), reportBytes(t, par), reportBytes(t, merged)
	if !bytes.Equal(a, b) {
		t.Errorf("sequential and parallel reports differ:\n%s\n---\n%s", a, b)
	}
	if !bytes.Equal(a, c) {
		t.Errorf("sequential and fleet-merged reports differ:\n%s\n---\n%s", a, c)
	}
}

// TestCheckpointResume: a resumed campaign replays journaled points instead
// of re-executing and reaches the identical report.
func TestCheckpointResume(t *testing.T) {
	spec := branchSpec(t)
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "crossval.journal")

	first, err := RunCtx(ctx, spec, Config{Parallelism: 2, Checkpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunCtx(ctx, spec, Config{Parallelism: 2, Checkpoint: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if second.Resumed != second.Points || second.Points != first.Points {
		t.Errorf("resumed %d of %d points (first run had %d)", second.Resumed, second.Points, first.Points)
	}
	if !bytes.Equal(reportBytes(t, first), reportBytes(t, second)) {
		t.Error("resumed report differs from original")
	}
}

// TestBrokenPruningCaughtAsSymbolicMiss: simulating an unsound pruning via
// the test-only hook must surface as a conclusive SymbolicMiss carrying the
// full repro (seed, point, value, trace tail, symbolic finding).
func TestBrokenPruningCaughtAsSymbolicMiss(t *testing.T) {
	spec := branchSpec(t)
	restore := SetDropTerminalForTest(func(pt simplescalar.Point, st *symexec.State) bool {
		// Drop every normally-halting terminal — exactly the states that
		// cover the concrete value-printing trials.
		return st.Outcome() == symexec.OutcomeNormal
	})
	defer restore()

	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sound() {
		t.Fatalf("broken pruning not caught: %s", rep.Summary())
	}
	var miss *Mismatch
	for i := range rep.Mismatches {
		if rep.Mismatches[i].Class == SymbolicMiss && !rep.Mismatches[i].Inconclusive {
			miss = &rep.Mismatches[i]
			break
		}
	}
	if miss == nil {
		t.Fatal("no conclusive SymbolicMiss in report")
	}
	if miss.Seed != spec.Seed {
		t.Errorf("repro seed %d, want %d", miss.Seed, spec.Seed)
	}
	if miss.Concrete == nil || miss.Concrete.Outcome != symexec.OutcomeNormal {
		t.Fatalf("missing concrete evidence: %+v", miss)
	}
	if len(miss.Concrete.TraceTail) == 0 {
		t.Error("repro has no concrete trace tail")
	}
	if miss.Symbolic.Injection == "" || miss.Repro == "" {
		t.Errorf("repro incomplete: injection %q, repro %q", miss.Symbolic.Injection, miss.Repro)
	}
	// The repro must round-trip through JSON (it travels in reports).
	b, err := json.Marshal(miss)
	if err != nil {
		t.Fatal(err)
	}
	var back Mismatch
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Class != SymbolicMiss {
		t.Errorf("class did not round-trip: %v", back.Class)
	}
}

// TestNotActivatedPoint: a site the fault-free run never reaches must agree
// trivially in both engines.
func TestNotActivatedPoint(t *testing.T) {
	u := asm.MustParse("dead", `
	jmp end
	print $2
end:
	halt
`)
	spec := Spec{Program: u.Program, Watchdog: 100, Seed: 1}
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sound() {
		t.Fatalf("unsound: %+v", rep.Mismatches)
	}
	if rep.NotActivated == 0 {
		t.Error("dead print site not reported as never activated")
	}
	if rep.ByClass[ClassDrift.String()] != 0 {
		t.Errorf("activation drift on dead code: %v", rep.ByClass)
	}
}
