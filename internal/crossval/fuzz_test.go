package crossval

import (
	"fmt"
	"testing"

	"symplfied/internal/isa"
	"symplfied/internal/machine"
	"symplfied/internal/symexec"
)

// fuzzWatchdog bounds fuzz programs that loop: both engines must classify
// them as the same hang at the same step.
const fuzzWatchdog = 10_000

// buildFuzzProgram decodes a byte string into a syntactically valid program.
// Every instruction slot carries a label so branch targets always resolve;
// the program ends in an unconditional halt. Backward jumps are allowed —
// the watchdog turns runaway loops into classifiable hangs.
func buildFuzzProgram(data []byte) *isa.Program {
	b := isa.NewBuilder("fuzz")
	n := len(data)
	if n > 48 {
		n = 48
	}
	at := func(j int) byte {
		if len(data) == 0 {
			return 0
		}
		return data[j%len(data)]
	}
	reg := func(j int) isa.Reg { return isa.Reg(1 + at(j)%5) }
	for i := 0; i < n; i++ {
		b.Label(fmt.Sprintf("L%d", i))
		op := at(i) % 16
		imm := int64(int8(at(i*7 + 1)))
		r1, r2, r3 := reg(i*3+1), reg(i*3+2), reg(i*3+3)
		// Branch targets may point anywhere in [0, n], including backward.
		target := fmt.Sprintf("L%d", int(at(i*5+2))%(n+1))
		switch op {
		case 0:
			b.Li(r1, imm)
		case 1:
			b.Add(r1, r2, r3)
		case 2:
			b.Sub(r1, r2, r3)
		case 3:
			b.Mult(r1, r2, r3)
		case 4:
			b.Div(r1, r2, r3) // divide-by-zero parity included
		case 5:
			b.Addi(r1, r2, imm)
		case 6:
			b.Seteq(r1, r2, r3)
		case 7:
			b.Setgt(r1, r2, r3)
		case 8:
			b.Read(r1) // end-of-input exception parity included
		case 9:
			b.Print(r1)
		case 10:
			b.Prints(fmt.Sprintf("s%d", at(i*7+3)%10))
		case 11:
			b.Beqi(r1, imm, target)
		case 12:
			b.Bne(r1, r2, target)
		case 13:
			b.St(r1, int64(at(i*11+4)%16), isa.Reg(0))
		case 14:
			b.Ld(r1, int64(at(i*11+4)%16), isa.Reg(0)) // illegal-address parity included
		default:
			b.Jmp(target)
		}
	}
	b.Label(fmt.Sprintf("L%d", n))
	b.Halt()
	return b.MustBuild()
}

// FuzzConcreteSymbolicParity (satellite): on fault-free programs the symbolic
// engine must behave exactly like the concrete machine — never fork, execute
// the same number of steps, and reach the same termination class and output.
// Any divergence here is an interpreter bug, not an abstraction artifact.
func FuzzConcreteSymbolicParity(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte("\x08\x09\x0b\x05\x0f\x02")) // read/print/branch/jump mix
	f.Add([]byte{4, 4, 4, 3, 3, 1})           // arithmetic incl. div
	f.Add([]byte{15, 15, 15})                 // jump-only (loops)
	f.Add([]byte{13, 14, 13, 14, 9})          // memory traffic
	f.Fuzz(func(t *testing.T, data []byte) {
		prog := buildFuzzProgram(data)
		input := []int64{3, -7, 0, 1 << 40}

		m := machine.New(prog, input, machine.Options{Watchdog: fuzzWatchdog})
		res := m.Run()

		st := symexec.NewState(prog, nil, input, symexec.Options{Watchdog: fuzzWatchdog, AffineTracking: true})
		for st.Running() {
			if !st.StepInPlace() {
				t.Fatalf("symbolic engine forked on a fault-free program at pc %d", st.PC)
			}
		}

		if got, want := st.Outcome(), ConcreteOutcome(res); got != want {
			t.Errorf("outcome drift: symbolic %v, concrete %v (%v)", got, want, res.Exception)
		}
		if res.Status == machine.StatusExcepted {
			if st.Exc == nil || st.Exc.Kind != res.Exception.Kind {
				t.Errorf("exception drift: symbolic %v, concrete %v", st.Exc, res.Exception)
			}
		}
		if got, want := st.OutputString(), machine.RenderOutput(res.Output); got != want {
			t.Errorf("output drift:\nsymbolic %q\nconcrete %q", got, want)
		}
		if st.Steps != res.Steps {
			t.Errorf("step-count drift: symbolic %d, concrete %d", st.Steps, res.Steps)
		}
	})
}
