package crossval

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"symplfied/internal/apps/tcas"
)

// tcasSmokeSpec is the seeded tcas cross-validation campaign CI runs: the
// paper's Section 6.2 subject, watchdog and state budget, with extremes plus
// seeded random values per site. Short mode trims the point count, not the
// methodology.
func tcasSmokeSpec(short bool) Spec {
	spec := Spec{
		Program:      tcas.Program(),
		Input:        tcas.UpwardInput().Slice(),
		Watchdog:     4_000,
		Seed:         2008,
		RandomPerReg: 3,
		StateBudget:  25_000,
	}
	if short {
		spec.MaxPoints = 24
		spec.RandomPerReg = 1
		spec.StateBudget = 10_000
	} else {
		spec.MaxPoints = 120
	}
	return spec
}

// TestCrossvalSmokeTCAS cross-validates the concrete injector against the
// symbolic engine on tcas and fails on any conclusive SymbolicMiss — a
// concrete corruption outcome the symbolic terminal set failed to cover is
// an unsoundness in the engine, never an acceptable abstraction artifact.
//
// When CROSSVAL_REPORT is set, the full mismatch report is written there so
// CI can upload it as an artifact (also on failure).
func TestCrossvalSmokeTCAS(t *testing.T) {
	spec := tcasSmokeSpec(testing.Short())
	rep, err := RunCtx(context.Background(), spec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if path := os.Getenv("CROSSVAL_REPORT"); path != "" {
		b, merr := json.MarshalIndent(rep, "", "  ")
		if merr != nil {
			t.Fatal(merr)
		}
		if werr := os.WriteFile(path, append(b, '\n'), 0o644); werr != nil {
			t.Fatal(werr)
		}
	}
	t.Logf("crossval tcas: %s", rep.Summary())
	if !rep.Sound() {
		for _, m := range rep.Mismatches {
			if m.Class == SymbolicMiss && !m.Inconclusive {
				t.Errorf("SymbolicMiss: %+v (repro: %s)", m.Point, m.Repro)
			}
		}
		t.Fatal("symbolic engine missed concrete outcomes — see mismatches above")
	}
	if n := rep.ByClass[ClassDrift.String()]; n != 0 {
		t.Errorf("%d class-drift mismatches (crash/hang/detect label disagreement)", n)
	}
	if rep.Trials == 0 {
		t.Fatal("smoke sweep ran no trials")
	}
}
