package experiments

import (
	"context"

	"symplfied/internal/apps/tcas"
	"symplfied/internal/checker"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/symexec"
)

// HardeningStudy is an extension artifact (not a paper table): it closes the
// paper's workflow on its own headline finding. The catastrophic tcas
// advisory flip (Section 6.2) is first refuted on the unprotected program;
// a return-address canary derived from the finding's constraints then turns
// the same fault site into a proof of resilience, with the residual
// single-instruction window between canary and jr quantified rather than
// hidden.
func HardeningStudy(ctx context.Context) (*Result, error) {
	res := &Result{ID: "hardening", Title: "extension: detector hardening closes the tcas advisory flip"}

	exec := symexec.DefaultOptions()
	exec.Watchdog = 4000
	input := tcas.UpwardInput().Slice()

	searchAt := func(prog *isa.Program, dets *checker.Spec, pc int) (*checker.Report, error) {
		spec := checker.Spec{
			Program: prog,
			Input:   input,
			Injections: []faults.Injection{{
				Class: faults.ClassRegister, PC: pc, Loc: isa.RegLoc(isa.RegRA),
			}},
			Exec:      exec,
			Predicate: checker.HaltedOutputOtherThan(tcas.UpwardRA),
		}
		if dets != nil {
			spec.Detectors = dets.Detectors
		}
		return checker.RunCtx(ctx, spec)
	}

	// Unprotected program, corruption at NCBC's return.
	plain := tcas.Program()
	jrPC, err := tcas.ReturnJrPC(plain, "Non_Crossing_Biased_Climb")
	if err != nil {
		return nil, err
	}
	before, err := searchAt(plain, nil, jrPC)
	if err != nil {
		return nil, err
	}

	// Hardened program, corruption at the canary (the same architectural
	// moment: $31 erroneous as the return sequence begins).
	hardProg, dets := tcas.Hardened()
	checkPC := -1
	for pc := 0; pc < hardProg.Len(); pc++ {
		if in := hardProg.At(pc); in.Op == isa.OpCheck && in.Imm == 91 {
			checkPC = pc
			break
		}
	}
	hardSpec := checker.Spec{Detectors: dets}
	after, err := searchAt(hardProg, &hardSpec, checkPC)
	if err != nil {
		return nil, err
	}

	// The residue: corruption after the canary, before the jr.
	hardJr, err := tcas.ReturnJrPC(hardProg, "Non_Crossing_Biased_Climb")
	if err != nil {
		return nil, err
	}
	residual, err := searchAt(hardProg, &hardSpec, hardJr)
	if err != nil {
		return nil, err
	}

	res.rowf("unprotected, err in $31 at NCBC return: verdict %s, %d escaping wrong advisories",
		before.Verdict(), len(before.Findings))
	res.rowf("hardened with %s:", dets.All()[0])
	res.rowf("  same corruption at the canary: verdict %s, detections %d",
		after.Verdict(), after.Outcomes[symexec.OutcomeDetected])
	res.rowf("  residual window (canary..jr): verdict %s, %d escaping findings",
		residual.Verdict(), len(residual.Findings))

	res.check(before.Verdict() == checker.VerdictRefuted,
		"the unprotected program is refuted", before.Verdict().String())
	res.check(after.Verdict() == checker.VerdictProven,
		"the hardened program is proven resilient at the fault site", after.Verdict().String())
	res.check(after.Outcomes[symexec.OutcomeDetected] > 0,
		"the canary fires symbolically", "")
	res.check(residual.Verdict() == checker.VerdictRefuted,
		"the residual window is made explicit (not claimed covered)", residual.Verdict().String())

	res.notef("this artifact extends the paper: it executes the Section 4.2 prescription ('the programmer can then formulate a detector') on the Section 6.2 finding")
	res.finalize()
	return res, nil
}
