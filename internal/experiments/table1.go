package experiments

import (
	"context"
	"fmt"

	"symplfied/internal/apps/tcas"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/symexec"
)

// Table1Manifestations reproduces Table 1: every computation-error category
// (instruction decoder, address/data bus, functional unit, instruction
// fetch) reduces to the modeling procedure in the table's last column — err
// placed in the category's target locations, or the PC redirected to an
// arbitrary valid code location. The experiment enumerates each category
// over the tcas program and verifies the manifestation of a sample of each.
func Table1Manifestations(_ context.Context) (*Result, error) {
	res := &Result{ID: "table1", Title: "Table 1 computation-error categories and manifestations"}

	prog := tcas.Program()
	exec := symexec.DefaultOptions()

	regInj := faults.RegisterInjections(prog, true)
	regAll := faults.RegisterInjections(prog, false)
	memInj := faults.MemoryInjections(prog)
	ctlInj := faults.ControlInjections(prog)
	decInj := faults.DecodeInjections(prog)

	res.rowf("program: tcas, %d instructions", prog.Len())
	res.rowf("register errors (bus/functional-unit rows, activated policy): %d injections", len(regInj))
	res.rowf("register errors (exhaustive %dx%d space):                     %d injections", prog.Len(), isa.NumRegs-1, len(regAll))
	res.rowf("memory errors (cache/memory-bus rows, at loads):             %d injections", len(memInj))
	res.rowf("fetch errors (PC to arbitrary valid location):               %d injections x %d targets", len(ctlInj), prog.Len()-1)
	res.rowf("decoder errors (changed/new/lost target):                    %d injections", len(decInj))

	// Verify each decode manifestation on a sample state at PC 0.
	base := symexec.NewState(prog, nil, tcas.UpwardInput().Slice(), exec)
	verifyDecode := func(kind faults.DecodeKind) (bool, string) {
		for _, inj := range decInj {
			if inj.Decode != kind || inj.PC != base.PC {
				continue
			}
			states, err := inj.Apply(base)
			if err != nil || len(states) != 1 {
				return false, fmt.Sprintf("apply failed: %v", err)
			}
			st := states[0]
			switch kind {
			case faults.DecodeChangedTarget:
				okOrig := st.Regs[inj.Loc.Reg].IsErr()
				okNew := st.Regs[inj.NewLoc.Reg].IsErr()
				return okOrig && okNew, fmt.Sprintf("err in %s and %s", inj.Loc, inj.NewLoc)
			case faults.DecodeLostTarget:
				return st.Regs[inj.Loc.Reg].IsErr(), fmt.Sprintf("err in %s", inj.Loc)
			case faults.DecodeNewTarget:
				return st.Regs[inj.NewLoc.Reg].IsErr(), fmt.Sprintf("err in %s", inj.NewLoc)
			}
		}
		// The kind may not exist at PC 0; scan any PC by re-running there.
		for _, inj := range decInj {
			if inj.Decode != kind {
				continue
			}
			st := base.Clone()
			st.PC = inj.PC
			states, err := inj.Apply(st)
			if err != nil || len(states) != 1 {
				return false, fmt.Sprintf("apply failed: %v", err)
			}
			out := states[0]
			switch kind {
			case faults.DecodeChangedTarget:
				return out.Regs[inj.Loc.Reg].IsErr() && out.Regs[inj.NewLoc.Reg].IsErr(), inj.String()
			case faults.DecodeLostTarget:
				return out.Regs[inj.Loc.Reg].IsErr(), inj.String()
			case faults.DecodeNewTarget:
				return out.Regs[inj.NewLoc.Reg].IsErr(), inj.String()
			}
		}
		return false, "no injection of this kind enumerated"
	}

	okChanged, gotChanged := verifyDecode(faults.DecodeChangedTarget)
	res.check(okChanged, "decoder row 1: changed output target puts err in original AND new targets", gotChanged)
	okNew, gotNew := verifyDecode(faults.DecodeNewTarget)
	res.check(okNew, "decoder row 2: no-target instruction replaced: err in the new wrong target", gotNew)
	okLost, gotLost := verifyDecode(faults.DecodeLostTarget)
	res.check(okLost, "decoder row 3: target dropped: err in the original target", gotLost)

	// Fetch row: PC redirected to every other valid location.
	ctl := faults.Injection{Class: faults.ClassControl, PC: 0}
	states, err := ctl.Apply(base)
	if err != nil {
		return nil, err
	}
	res.check(len(states) == prog.Len()-1,
		"fetch row: PC error forks to every other valid code location",
		fmt.Sprintf("%d successors for %d instructions", len(states), prog.Len()))

	// Bus rows: register errors target exactly the registers each
	// instruction reads (activation guaranteed).
	activated := true
	for _, inj := range regInj[:min(len(regInj), 64)] {
		uses := false
		for _, r := range prog.At(inj.PC).SrcRegs() {
			if r == inj.Loc.Reg {
				uses = true
			}
		}
		if !uses {
			activated = false
			break
		}
	}
	res.check(activated, "bus rows: activated policy injects only registers the instruction reads", "sampled 64 injections")

	res.finalize()
	return res, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
