package experiments

import (
	"context"
	"fmt"

	"symplfied/internal/apps/replace"
	"symplfied/internal/apps/tcas"
	"symplfied/internal/isa"
)

// Inventory reports the implementation-size statistics the paper gives for
// its Maude model (Section 6: "about 2000 lines of uncommented Maude code
// split into 35 modules ... 54 rewrite rules and 384 equations") alongside
// this reproduction's analogues: deterministic instruction semantics play
// the role of equations, and explicit nondeterministic fork points play the
// role of rewrite rules.
func Inventory(_ context.Context) (*Result, error) {
	res := &Result{ID: "inventory", Title: "implementation inventory vs. the paper's model statistics"}

	ops := isa.Ops()

	// The nondeterministic fork points of the executor (the rewrite-rule
	// analogues): comparison true/false (6 comparison operators x 2
	// directions), erroneous divisor zero/nonzero, erroneous load
	// (arbitrary location + exception), erroneous store (arbitrary location
	// + fresh location), erroneous control target (arbitrary location +
	// exception), PC-error redirection, detector pass/fail.
	forkPoints := []string{
		"comparison on err: true case",
		"comparison on err: false case",
		"erroneous divisor: == 0 (div-zero)",
		"erroneous divisor: != 0 (err result)",
		"erroneous load pointer: resolves to each defined word",
		"erroneous load pointer: undefined address exception",
		"erroneous store pointer: overwrites each defined word",
		"erroneous store pointer: creates a fresh location",
		"erroneous control target: each valid code location",
		"erroneous control target: illegal-instruction exception",
		"fetch error: PC redirected to each valid code location",
		"detector on err: pass case",
		"detector on err: fail case (detected)",
	}

	res.rowf("paper model: ~2000 lines of Maude, 35 modules, 54 rewrite rules, 384 equations")
	res.rowf("this reproduction:")
	res.rowf("  instruction set: %d opcodes (deterministic semantics: the equation analogue)", len(ops))
	res.rowf("  nondeterministic fork points (the rewrite-rule analogue): %d", len(forkPoints))
	for _, f := range forkPoints {
		res.rowf("    - %s", f)
	}
	res.rowf("  benchmark applications: tcas %d instructions, replace %d instructions (paper: 800 and ~1550 lines)",
		tcas.Program().Len(), replace.Program().Len())

	res.check(len(ops) > 40, "instruction set covers the paper's instruction classes", fmt.Sprintf("%d opcodes", len(ops)))
	res.check(tcas.Program().Len() > 100, "tcas translation is a full program, not a stub", fmt.Sprintf("%d instructions", tcas.Program().Len()))
	res.check(replace.Program().Len() > 400, "replace translation covers the Table 3 functions", fmt.Sprintf("%d instructions", replace.Program().Len()))
	res.finalize()
	return res, nil
}
