// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section 4 examples, Table 1, Table 2, the tcas study
// of Section 6.2, and the replace study of Section 6.4). Each driver
// regenerates the artifact's rows, checks the paper's qualitative shape
// (who wins, what is found, what is never found), and is shared by the
// bench harness (bench_test.go) and the cmd/benchrepro CLI.
//
// Absolute numbers are not expected to match the paper — the substrate is
// this package's interpreter, not the authors' Maude setup or their Opteron
// cluster — but the shape assertions encode the claims that must hold.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Result is a regenerated artifact.
type Result struct {
	// ID names the artifact: "fig2", "fig3", "table1", "tcas", "table2",
	// "replace", "inventory".
	ID string
	// Title is the paper artifact being reproduced.
	Title string
	// Rows are the regenerated report lines (the table/figure contents).
	Rows []string
	// ShapeOK reports whether the paper's qualitative claims held.
	ShapeOK bool
	// ShapeChecks itemizes each claim and whether it held.
	ShapeChecks []Check
	// Notes records caveats (substitutions, scaling).
	Notes []string
}

// Check is one qualitative claim from the paper.
type Check struct {
	Claim string
	OK    bool
	Got   string
}

func (r *Result) check(ok bool, claim, got string) {
	r.ShapeChecks = append(r.ShapeChecks, Check{Claim: claim, OK: ok, Got: got})
}

func (r *Result) finalize() {
	r.ShapeOK = true
	for _, c := range r.ShapeChecks {
		if !c.OK {
			r.ShapeOK = false
		}
	}
}

func (r *Result) rowf(format string, args ...any) {
	r.Rows = append(r.Rows, fmt.Sprintf(format, args...))
}

func (r *Result) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render formats the result for terminal output.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, row := range r.Rows {
		b.WriteString("  ")
		b.WriteString(row)
		b.WriteString("\n")
	}
	for _, c := range r.ShapeChecks {
		mark := "PASS"
		if !c.OK {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %s (%s)\n", mark, c.Claim, c.Got)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Runner is a named experiment entry point. Run observes ctx the way the
// study harnesses do: cancellation stops the underlying sweeps, which
// surface partial tallies, and the driver's shape checks then report what
// the truncated artifact failed to show.
type Runner struct {
	ID   string
	Run  func(ctx context.Context) (*Result, error)
	Desc string
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{ID: "fig2", Desc: "Section 4.1 factorial outcome enumeration", Run: Fig2Factorial},
		{ID: "fig3", Desc: "Section 4.2 factorial detector derivation", Run: Fig3Detectors},
		{ID: "table1", Desc: "Table 1 computation-error manifestations", Run: Table1Manifestations},
		{ID: "tcas", Desc: "Section 6.2 tcas symbolic study", Run: func(ctx context.Context) (*Result, error) { return TcasStudy(ctx, DefaultTcasConfig()) }},
		{ID: "table2", Desc: "Table 2 SimpleScalar-style concrete campaigns", Run: func(ctx context.Context) (*Result, error) { return Table2Campaigns(ctx, DefaultTable2Config()) }},
		{ID: "replace", Desc: "Section 6.4 replace study", Run: func(ctx context.Context) (*Result, error) { return ReplaceStudy(ctx, DefaultReplaceConfig()) }},
		{ID: "inventory", Desc: "implementation inventory (paper Section 6 stats analogue)", Run: Inventory},
		{ID: "hardening", Desc: "extension: canary hardening closes the tcas flip", Run: HardeningStudy},
		{ID: "classes", Desc: "extension: memory/control/decode classes on tcas", Run: ClassesStudy},
	}
}

// ByID returns the runner with the given ID.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

func sortedKeys[K ~string, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
