package experiments

import (
	"context"
	"fmt"
	"strings"

	"symplfied/internal/apps/factorial"
	"symplfied/internal/checker"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/symexec"
)

// Fig3Detectors reproduces Section 4.2: the factorial program of Figure 3
// with two embedded detectors, under the same loop-counter error. The
// paper's claims: the first detector (check $4 < $3) is subsumed by the
// loop-continuation constraint and never fires; the second detector forks,
// and the constraint solver derives exactly which corrupted values are
// caught — making the escaping errors explicit to the programmer.
func Fig3Detectors(ctx context.Context) (*Result, error) {
	res := &Result{ID: "fig3", Title: "Figure 3 / Section 4.2 detector analysis with constraint derivation"}
	const input = 5

	prog, dets := factorial.WithDetectors()
	subiPC, ok := factorial.SubiPC(prog)
	if !ok {
		return nil, fmt.Errorf("fig3: decrement instruction not found")
	}

	exec := symexec.DefaultOptions()
	exec.Watchdog = 400
	ir, err := checker.RunInjectionCtx(ctx, checker.Spec{
		Program:   prog,
		Detectors: dets,
		Input:     []int64{input},
		Exec:      exec,
		Predicate: checker.OutcomeIs(symexec.OutcomeDetected),
	}, faults.Injection{Class: faults.ClassRegister, PC: subiPC, Loc: isa.RegLoc(3)})
	if err != nil {
		return nil, err
	}

	det1Fired := false
	derived := ""
	derivedOK := false
	for _, f := range ir.Findings {
		if f.State.Exc == nil {
			continue
		}
		if strings.HasPrefix(f.State.Exc.Detail, "detector 1") {
			det1Fired = true
		}
		cons := f.State.Sym.RootConstraints(0)
		if cons == nil {
			continue
		}
		if derived == "" {
			derived = cons.String()
		}
		if cons.Admits(3) && cons.Admits(4) && cons.Admits(5) && !cons.Admits(2) && !cons.Admits(6) {
			derivedOK = true
			derived = cons.String()
		}
	}

	res.rowf("injection: err in $3 before the decrement, first loop iteration (input %d)", input)
	res.rowf("outcomes: detected=%d normal=%d crash=%d hang=%d (states %d)",
		ir.Outcomes[symexec.OutcomeDetected], ir.Outcomes[symexec.OutcomeNormal],
		ir.Outcomes[symexec.OutcomeCrash], ir.Outcomes[symexec.OutcomeHang], ir.StatesExplored)
	res.rowf("derived detection condition on the corrupted value x: %s", derived)

	res.check(ir.Outcomes[symexec.OutcomeDetected] > 0, "detector 2 detects some corrupted values", fmt.Sprintf("%d detections", ir.Outcomes[symexec.OutcomeDetected]))
	res.check(!det1Fired, "detector 1 never fires (subsumed by the loop-continuation constraint)", fmt.Sprintf("det1Fired=%v", det1Fired))
	res.check(derivedOK, "solver pins detection to corrupted values in (2, input]", derived)
	res.check(ir.Outcomes[symexec.OutcomeNormal] > 0, "escaping errors remain and are made explicit", fmt.Sprintf("%d escaping normal paths", ir.Outcomes[symexec.OutcomeNormal]))

	res.notef("the paper's prose states the detected/escaped split with inconsistent direction (Section 4.2); the derivation here is the algebraically consistent one: the check $2 >= $6*$1 fails, i.e. detects, exactly when the corrupted counter is below the original input while still continuing the loop")
	res.finalize()
	return res, nil
}
