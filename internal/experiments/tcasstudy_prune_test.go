package experiments

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"symplfied/internal/checker"
)

// TestTcasStudyPruned re-runs the Section 6.2 study (scaled down) with
// liveness pruning enabled and checker.SetCheckPruning armed: any elided
// exploration is shadow-explored and the process panics on divergence, so a
// passing run discharges the pruning proof over the whole study. The pruned
// artifact must match the unpruned one row for row — same findings, same
// states, same task split — except for the pruning tally itself.
func TestTcasStudyPruned(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled study in -short mode")
	}
	cfg := DefaultTcasConfig()
	cfg.Tasks = 40
	cfg.TaskStateBudget = 12_000

	plain, err := TcasStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	defer checker.SetCheckPruning(true)()
	cfg.PruneDead = true
	pruned, err := TcasStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !pruned.ShapeOK {
		t.Errorf("pruned study shape checks failed:\n%s", pruned.Render())
	}

	prunedCount := -1
	var kept []string
	for _, row := range pruned.Rows {
		if strings.HasPrefix(row, "liveness pruning:") {
			if _, err := fmt.Sscanf(row, "liveness pruning: %d", &prunedCount); err != nil {
				t.Fatalf("unparsable pruning row %q: %v", row, err)
			}
			continue
		}
		kept = append(kept, row)
	}
	if prunedCount <= 0 {
		t.Fatalf("no injections classified by the liveness proof (row reported %d)", prunedCount)
	}
	if len(kept) != len(plain.Rows) {
		t.Fatalf("row count diverges with pruning: %d vs %d\nplain:\n%s\npruned:\n%s",
			len(plain.Rows), len(kept), plain.Render(), pruned.Render())
	}
	for i := range kept {
		if kept[i] != plain.Rows[i] {
			t.Errorf("row %d diverges with pruning:\n  plain:  %s\n  pruned: %s", i, plain.Rows[i], kept[i])
		}
	}
}
