package experiments

import (
	"context"
	"fmt"
	"sort"

	"symplfied/internal/apps/factorial"
	"symplfied/internal/checker"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/symexec"
)

// Fig2Factorial reproduces Section 4.1: the outcome family of a transient
// error in the loop counter of the factorial program (Figure 2) with input
// 5, injected after the decrement in each loop iteration. The paper derives
// that the early-exit forks print each partial product (described there as
// "1!, 2!, ..., 5!"; the program's downward loop makes the concrete family
// 5!/(5-k)!), the continuing forks eventually print err, and unterminated
// forks time out — at most n+1 cases per injection instead of the 2^k value
// space a concrete injector would face.
func Fig2Factorial(ctx context.Context) (*Result, error) {
	res := &Result{ID: "fig2", Title: "Figure 2 / Section 4.1 factorial outcome enumeration"}
	const input = 5

	prog := factorial.Plain()
	subiPC, ok := factorial.SubiPC(prog)
	if !ok {
		return nil, fmt.Errorf("fig2: decrement instruction not found")
	}

	var injections []faults.Injection
	for occ := 1; occ <= input-1; occ++ {
		injections = append(injections, faults.Injection{
			Class: faults.ClassRegister, PC: subiPC, Occurrence: occ, Loc: isa.RegLoc(3),
		})
	}

	exec := symexec.DefaultOptions()
	exec.Watchdog = 400
	rep, err := checker.RunCtx(ctx, checker.Spec{
		Program:    prog,
		Input:      []int64{input},
		Injections: injections,
		Exec:       exec,
		Predicate:  checker.OutcomeIs(symexec.OutcomeNormal),
	})
	if err != nil {
		return nil, err
	}

	printed := map[int64]bool{}
	errPrinted := 0
	for _, f := range rep.Findings {
		vals := f.State.OutputValues()
		if len(vals) != 1 {
			continue
		}
		if vals[0].IsErr() {
			errPrinted++
			continue
		}
		v, _ := vals[0].Concrete()
		printed[v] = true
	}
	var vals []int64
	for v := range printed {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })

	res.rowf("injections: err in $3 after 'subi' in iterations 1..%d (input %d)", input-1, input)
	res.rowf("concrete printed values enumerated: %v", vals)
	res.rowf("paths printing err: %d, hangs (watchdog): %d, states explored: %d",
		errPrinted, rep.Outcomes[symexec.OutcomeHang], rep.TotalStates)

	wantVals := []int64{5, 20, 60, 120}
	allThere := true
	for _, w := range wantVals {
		if !printed[w] {
			allThere = false
		}
	}
	res.check(allThere, "every partial product enumerated (the paper's n-outcome family)",
		fmt.Sprintf("got %v, must include %v", vals, wantVals))
	res.check(errPrinted > 0, "continuing forks print err", fmt.Sprintf("%d err-printing paths", errPrinted))
	res.check(rep.Outcomes[symexec.OutcomeHang] > 0, "unterminated forks hit the watchdog (hang)",
		fmt.Sprintf("%d hangs", rep.Outcomes[symexec.OutcomeHang]))
	res.check(rep.NotActivated == 0, "every injection activated", fmt.Sprintf("%d not activated", rep.NotActivated))

	res.notef("the paper lists the family loosely as factorials; the Figure 2 loop multiplies downward, so the partial products for input 5 are 5, 20, 60, 120")
	res.notef("additional concrete outcomes (10, 40, 240) are paths where the affine constraint solver pins the corrupted counter to exactly 3 — the paper's coarser model reports these as err prints")
	res.finalize()
	return res, nil
}
