package experiments

import (
	"context"
	"testing"
)

// The experiment drivers are the repository's reproduction contract: every
// table and figure must regenerate with its paper-shape checks passing.

func runExperiment(t *testing.T, id string) *Result {
	t.Helper()
	r, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if !res.ShapeOK {
		t.Errorf("%s: shape checks failed:\n%s", id, res.Render())
	}
	return res
}

func TestFig2(t *testing.T)      { runExperiment(t, "fig2") }
func TestFig3(t *testing.T)      { runExperiment(t, "fig3") }
func TestTable1(t *testing.T)    { runExperiment(t, "table1") }
func TestInventory(t *testing.T) { runExperiment(t, "inventory") }
func TestHardening(t *testing.T) { runExperiment(t, "hardening") }

func TestClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("full class sweeps in -short mode")
	}
	res := runExperiment(t, "classes")
	t.Log("\n" + res.Render())
}

func TestTcasStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full study in -short mode")
	}
	res := runExperiment(t, "tcas")
	t.Log("\n" + res.Render())
}

func TestTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns in -short mode")
	}
	res := runExperiment(t, "table2")
	t.Log("\n" + res.Render())
}

func TestReplaceStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full study in -short mode")
	}
	res := runExperiment(t, "replace")
	t.Log("\n" + res.Render())
}
