package experiments

import (
	"context"
	"fmt"

	"symplfied/internal/apps/tcas"
	"symplfied/internal/checker"
	"symplfied/internal/cluster"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/symexec"
)

// TcasConfig scales the Section 6.2 study.
type TcasConfig struct {
	// Tasks is the decomposition width (the paper used 150 cluster nodes).
	Tasks int
	// TaskStateBudget replaces the paper's 30-minute wall-clock allotment.
	TaskStateBudget int
	// MaxFindingsPerTask mirrors the paper's cap of 10 errors per task.
	MaxFindingsPerTask int
	// Workers is the worker-pool size (0: GOMAXPROCS).
	Workers int
	// Watchdog bounds each symbolic path.
	Watchdog int
	// PruneDead classifies injections into liveness-dead registers benign by
	// proof instead of exploring each (checker.Spec.PruneDeadInjections).
	// The study's verdicts are unchanged; the paper's own Section 6.2 sweep
	// already applies the coarser syntactic version of this optimization by
	// enumerating only the registers each instruction uses.
	PruneDead bool
	// MergeStates explores each injection with post-dominator state merging
	// and cycle acceleration (checker.Spec.MergeStates). Verdicts and
	// findings are unchanged; the states-explored tally drops because fused
	// states step once for many worlds and watchdog-bound hang loops are
	// fast-forwarded instead of stepped lap by lap.
	MergeStates bool
}

// DefaultTcasConfig reproduces the paper's setup at full scale.
func DefaultTcasConfig() TcasConfig {
	return TcasConfig{
		Tasks:              150,
		TaskStateBudget:    25_000,
		MaxFindingsPerTask: 10,
		Watchdog:           4_000,
	}
}

// TcasStudy reproduces Section 6.2: a symbolic search over all single
// register errors in tcas (one per execution, injected into the registers
// each instruction uses) for runs that halt without an exception printing an
// advisory other than the fault-free 1. The paper's claims: exactly the
// catastrophic 1->2 flip is found (via the corrupted return address in
// Non_Crossing_Biased_Climb), along with 1->0 and out-of-range outcomes;
// some tasks complete, a subset of those hold findings.
func TcasStudy(ctx context.Context, cfg TcasConfig) (*Result, error) {
	res := &Result{ID: "tcas", Title: "Section 6.2 tcas symbolic register-error study"}

	prog := tcas.Program()
	input := tcas.UpwardInput()
	if got := tcas.Oracle(input); got != tcas.UpwardRA {
		return nil, fmt.Errorf("tcas study: fault-free oracle output %d, want 1", got)
	}

	injections := faults.RegisterInjectionsUsed(prog)
	exec := symexec.DefaultOptions()
	exec.Watchdog = cfg.Watchdog

	spec := checker.Spec{
		Program:             prog,
		Input:               input.Slice(),
		Exec:                exec,
		Predicate:           checker.HaltedOutputOtherThan(tcas.UpwardRA),
		PruneDeadInjections: cfg.PruneDead,
		MergeStates:         cfg.MergeStates,
	}
	tasks := cluster.Split(injections, cfg.Tasks)
	reports := cluster.RunCtx(ctx, spec, tasks, cluster.Config{
		Workers:            cfg.Workers,
		TaskStateBudget:    cfg.TaskStateBudget,
		MaxFindingsPerTask: cfg.MaxFindingsPerTask,
	})
	sum := cluster.Summarize(reports)

	// Classify findings the way Section 6.2 reports them.
	var flips, zeros, outOfRange, errOut int
	var flip *checker.Finding
	for i := range sum.Findings {
		f := &sum.Findings[i]
		vals := f.State.OutputValues()
		if len(vals) != 1 {
			outOfRange++
			continue
		}
		if vals[0].IsErr() {
			errOut++
			continue
		}
		switch v, _ := vals[0].Concrete(); v {
		case tcas.DownwardRA:
			flips++
			if flip == nil {
				flip = f
			}
		case tcas.Unresolved:
			zeros++
		default:
			outOfRange++
		}
	}

	res.rowf("injection space: %d register errors over %d instructions (paper: ~800x32 reduced by activation)",
		len(injections), prog.Len())
	res.rowf("tasks: %d launched, %d completed, %d completed empty, %d completed with findings, %d incomplete",
		sum.Tasks, sum.Completed, sum.CompletedEmpty, sum.CompletedWithFinds, sum.Incomplete)
	res.rowf("states explored: %d; terminal outcomes: %v", sum.TotalStates, renderOutcomes(sum.Outcomes))
	if cfg.PruneDead {
		res.rowf("liveness pruning: %d injections classified benign by proof (verdicts unchanged)", sum.Pruned)
	}
	if cfg.MergeStates {
		res.rowf("state merging: %d injections explored merged; %d shared-step observations and %d loop steps elided (verdicts unchanged)",
			sum.Merged, sum.Exec.StatesMerged, sum.Exec.StepsElided)
	}
	res.rowf("undetected incorrect advisories: 1->2 (catastrophic): %d, 1->0 (unresolved): %d, out-of-range/multi: %d, err printed: %d",
		flips, zeros, outOfRange, errOut)
	if flip != nil {
		res.rowf("catastrophic scenario: %s", flip.Injection)
		res.rowf("  symbolic state at failure: %s", flip.State.Sym.Describe())
	}

	res.check(flips > 0, "the catastrophic 1->2 advisory flip is found", fmt.Sprintf("%d flips", flips))
	if flip != nil {
		res.check(flip.Injection.Loc == isa.RegLoc(isa.RegRA),
			"the flip stems from a corrupted return address ($31) in a callee",
			flip.Injection.String())
	}

	// The paper's specific scenario, verified in isolation: err in $31 at
	// Non_Crossing_Biased_Climb's return, landing on the DOWNWARD_RA
	// assignment, with the solver pinning the corrupted value to exactly
	// that code address.
	jrPC, err := tcas.ReturnJrPC(prog, "Non_Crossing_Biased_Climb")
	if err != nil {
		return nil, err
	}
	landPC, err := tcas.DownwardAssignPC(prog)
	if err != nil {
		return nil, err
	}
	ncbc, err := checker.RunInjectionCtx(ctx, spec, faults.Injection{
		Class: faults.ClassRegister, PC: jrPC, Loc: isa.RegLoc(isa.RegRA),
	})
	if err != nil {
		return nil, err
	}
	ncbcFlip := false
	for _, f := range ncbc.Findings {
		vals := f.State.OutputValues()
		if len(vals) != 1 || !vals[0].Equal(isa.Int(tcas.DownwardRA)) {
			continue
		}
		if cons := f.State.Sym.RootConstraints(0); cons != nil {
			if v, okx := cons.Exact(); okx && v == int64(landPC) {
				ncbcFlip = true
			}
		}
	}
	res.rowf("targeted scenario: err in $31 at NCBC's jr => lands at AST_downward (@%d), prints 2: %v", landPC, ncbcFlip)
	res.check(ncbcFlip,
		"the paper's scenario reproduces: NCBC return-address corruption pinned to the DOWNWARD_RA assignment",
		fmt.Sprintf("constraint e#0 == %d", landPC))
	res.check(zeros > 0, "1->0 (unresolved instead of upward) outcomes are found", fmt.Sprintf("%d", zeros))
	res.check(sum.Completed > 0 && sum.CompletedWithFinds > 0 && sum.CompletedEmpty > 0,
		"task split matches the paper's shape: some complete empty, some complete with findings",
		fmt.Sprintf("%d empty, %d with findings, %d incomplete", sum.CompletedEmpty, sum.CompletedWithFinds, sum.Incomplete))

	res.notef("budgets are in symbolic states rather than wall-clock minutes, so completion counts are deterministic")
	res.finalize()
	return res, nil
}

func renderOutcomes(m map[symexec.Outcome]int) string {
	order := []symexec.Outcome{symexec.OutcomeNormal, symexec.OutcomeCrash, symexec.OutcomeHang, symexec.OutcomeDetected}
	s := ""
	for _, o := range order {
		if n := m[o]; n > 0 {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%s=%d", o, n)
		}
	}
	if s == "" {
		return "none"
	}
	return s
}
