package experiments

import (
	"context"
	"fmt"

	"symplfied/internal/apps/tcas"
	"symplfied/internal/simplescalar"
)

// Table2Config scales the concrete campaigns.
type Table2Config struct {
	// CampaignSizes are the fault counts of Table 2's two columns.
	CampaignSizes []int
	// Seed drives the random value selection.
	Seed int64
	// Watchdog bounds each concrete run (hang classification).
	Watchdog int
}

// DefaultTable2Config reproduces both of the paper's campaigns (6253 and
// 41082 faults).
func DefaultTable2Config() Table2Config {
	return Table2Config{
		CampaignSizes: []int{6253, 41082},
		Seed:          2008, // DSN 2008
		Watchdog:      50_000,
	}
}

// Table2Campaigns reproduces Table 2 (Section 6.3): SimpleScalar-style
// concrete fault injection into the source and destination registers of all
// tcas instructions — three extreme plus random values per site — classified
// into the advisory buckets 0 / 1 / 2 / other / crash / hang. The paper's
// headline shape: even 41082 concrete injections find ZERO catastrophic
// outcome-2 cases, while the symbolic study (Section 6.2) finds them with
// ease.
func Table2Campaigns(ctx context.Context, cfg Table2Config) (*Result, error) {
	res := &Result{ID: "table2", Title: "Table 2 concrete fault-injection outcome distribution"}

	prog := tcas.Program()
	input := tcas.UpwardInput().Slice()
	points := len(simplescalar.EnumeratePoints(prog))
	if points == 0 {
		return nil, fmt.Errorf("table2: no injection points")
	}

	labels := []string{"0", "1", "2", simplescalar.LabelOther, simplescalar.LabelCrash, simplescalar.LabelHang}
	header := "outcome"
	for _, n := range cfg.CampaignSizes {
		header += fmt.Sprintf(" | #faults=%d", n)
	}
	res.rowf("%s", header)

	type campaign struct {
		n   int
		rep *simplescalar.Report
	}
	campaigns := make([]campaign, 0, len(cfg.CampaignSizes))
	for _, n := range cfg.CampaignSizes {
		// Pick the per-site random-value count so the site cross product
		// reaches the campaign size (the paper scaled its second campaign
		// the same way), then cap exactly.
		randomPer := (n+points-1)/points - 3
		if randomPer < 3 {
			randomPer = 3
		}
		rep, err := simplescalar.RunResilient(ctx, simplescalar.Config{
			Program:       prog,
			Input:         input,
			Watchdog:      cfg.Watchdog,
			Classify:      simplescalar.SingleValueClassifier(0, 1, 2),
			Seed:          cfg.Seed,
			RandomPerReg:  randomPer,
			MaxInjections: n,
		}, simplescalar.Resilience{})
		if err != nil {
			return nil, err
		}
		campaigns = append(campaigns, campaign{n: n, rep: rep})
	}

	for _, label := range labels {
		row := fmt.Sprintf("%-7s", label)
		for _, c := range campaigns {
			row += fmt.Sprintf(" | %6.2f%% (%d)", c.rep.Percent(label), c.rep.Counts[label])
		}
		res.rowf("%s", row)
	}

	for _, c := range campaigns {
		res.check(c.rep.Counts["2"] == 0,
			fmt.Sprintf("campaign %d: zero catastrophic outcome-2 cases (the paper's 0%%)", c.n),
			fmt.Sprintf("%d", c.rep.Counts["2"]))
		res.check(c.rep.Total == c.n,
			fmt.Sprintf("campaign %d: exact fault count", c.n),
			fmt.Sprintf("%d", c.rep.Total))
		top := ""
		topN := -1
		for _, l := range c.rep.Labels() {
			if c.rep.Counts[l] > topN {
				top, topN = l, c.rep.Counts[l]
			}
		}
		res.check(top == "1",
			fmt.Sprintf("campaign %d: benign outcome 1 dominates (paper: 53-56%%)", c.n),
			fmt.Sprintf("top=%s %.1f%%", top, c.rep.Percent(top)))
		res.check(c.rep.Counts[simplescalar.LabelCrash] > 0,
			fmt.Sprintf("campaign %d: crashes present (paper: 40-43%%)", c.n),
			fmt.Sprintf("%.1f%%", c.rep.Percent(simplescalar.LabelCrash)))
	}

	res.notef("hang requires the corrupted value to recreate a control cycle; with this tcas translation and value policy the hang bucket can be empty (the paper saw 0.4-0.8%%)")
	res.notef("contrast with experiment 'tcas': the symbolic study finds the 1->2 flip that both concrete campaigns miss")
	res.finalize()
	return res, nil
}
