package experiments

import (
	"context"
	"fmt"

	"symplfied/internal/apps/tcas"
	"symplfied/internal/checker"
	"symplfied/internal/cluster"
	"symplfied/internal/faults"
	"symplfied/internal/symexec"
)

// ClassesStudy is an extension artifact: the paper's evaluation sweeps only
// register errors (Section 6), but the framework's error model defines
// memory, control (fetch) and decoder classes as well (Table 1, Section
// 5.2). This study runs each remaining class over tcas through the same
// cluster harness and checks that each uncovers undetected incorrect
// advisories — i.e. the fault model is live end-to-end, not just defined.
func ClassesStudy(ctx context.Context) (*Result, error) {
	res := &Result{ID: "classes", Title: "extension: memory/control/decode error classes on tcas"}

	prog := tcas.Program()
	input := tcas.UpwardInput().Slice()
	exec := symexec.DefaultOptions()
	exec.Watchdog = 4_000

	spec := checker.Spec{
		Program:   prog,
		Input:     input,
		Exec:      exec,
		Predicate: checker.HaltedOutputOtherThan(tcas.UpwardRA),
	}

	classes := []struct {
		class  faults.Class
		budget int
		tasks  int
	}{
		{faults.ClassMemory, 40_000, 16},
		{faults.ClassControl, 30_000, 32},
		{faults.ClassDecode, 20_000, 64},
	}

	for _, c := range classes {
		injections := faults.ForClass(c.class, prog)
		tasks := cluster.Split(injections, c.tasks)
		reports := cluster.RunCtx(ctx, spec, tasks, cluster.Config{
			TaskStateBudget:    c.budget,
			MaxFindingsPerTask: 10,
		})
		sum := cluster.Summarize(reports)
		for _, r := range reports {
			if r.Err != nil {
				return nil, fmt.Errorf("classes: %s task %d: %w", c.class, r.TaskID, r.Err)
			}
		}

		flips := 0
		for _, f := range sum.Findings {
			vals := f.State.OutputValues()
			if len(vals) == 1 {
				if v, ok := vals[0].Concrete(); ok && v == tcas.DownwardRA {
					flips++
				}
			}
		}

		res.rowf("%-8s: %4d injections, %3d/%d tasks completed, %6d states, %3d findings (%d advisory flips); outcomes %s",
			c.class, len(injections), sum.Completed, sum.Tasks, sum.TotalStates,
			len(sum.Findings), flips, renderOutcomes(sum.Outcomes))

		res.check(len(sum.Findings) > 0,
			fmt.Sprintf("%s errors uncover undetected incorrect advisories", c.class),
			fmt.Sprintf("%d findings", len(sum.Findings)))
		if c.class == faults.ClassControl {
			res.check(flips > 0,
				"control (fetch) errors reproduce the catastrophic flip without any register corruption",
				fmt.Sprintf("%d flips", flips))
		}
	}

	res.notef("the paper's evaluation sweeps register errors only; this study exercises the other Table 1 categories through the same pipeline")
	res.finalize()
	return res, nil
}
