package experiments

import (
	"context"
	"fmt"

	"symplfied/internal/apps/replace"
	"symplfied/internal/checker"
	"symplfied/internal/cluster"
	"symplfied/internal/faults"
	"symplfied/internal/machine"
	"symplfied/internal/symexec"
)

// ReplaceConfig scales the Section 6.4 study.
type ReplaceConfig struct {
	// Tasks is the decomposition width (the paper used 312 search tasks).
	Tasks int
	// TaskStateBudget replaces the paper's 30-minute allotment.
	TaskStateBudget int
	// MaxFindingsPerTask mirrors the tcas study's cap.
	MaxFindingsPerTask int
	// Workers is the worker-pool size (0: GOMAXPROCS).
	Workers int
	// Watchdog bounds each symbolic path.
	Watchdog int
	// Pattern, Substitution, Line form the workload.
	Pattern, Substitution, Line string
	// MergeStates explores each injection with post-dominator state merging
	// and cycle acceleration (checker.Spec.MergeStates); verdicts and
	// findings are unchanged, only the states-explored tally drops.
	MergeStates bool
}

// DefaultReplaceConfig reproduces the study on a character-class workload
// that exercises the paper's key functions (makepat, getccl, dodash, amatch,
// locate).
func DefaultReplaceConfig() ReplaceConfig {
	return ReplaceConfig{
		Tasks:              312,
		TaskStateBudget:    60_000,
		MaxFindingsPerTask: 10,
		Watchdog:           120_000,
		Pattern:            "[a-c]x*",
		Substitution:       "<&>",
		Line:               "axx b cx",
	}
}

// ReplaceStudy reproduces Section 6.4: all single register errors (one per
// execution) in the replace program that lead to an incorrect program
// outcome. The paper's reported shape: of 312 search tasks, a majority
// completed; most completed tasks saw only benign errors or crashes, while a
// nonempty subset found errors leading to incorrect output (the example
// scenario being the corrupted dodash delimiter).
func ReplaceStudy(ctx context.Context, cfg ReplaceConfig) (*Result, error) {
	res := &Result{ID: "replace", Title: "Section 6.4 replace symbolic register-error study"}

	prog := replace.Program()
	input := replace.Input(cfg.Pattern, cfg.Substitution, cfg.Line)

	// Fault-free reference output.
	ref := machine.New(prog, input, machine.Options{Watchdog: 2_000_000})
	r := ref.Run()
	if r.Status != machine.StatusHalted {
		return nil, fmt.Errorf("replace study: reference run %v (%v)", r.Status, r.Exception)
	}
	expected := machine.RenderOutput(r.Output)

	injections := faults.RegisterInjections(prog, true)
	exec := symexec.DefaultOptions()
	exec.Watchdog = cfg.Watchdog

	spec := checker.Spec{
		Program:     prog,
		Input:       input,
		Exec:        exec,
		Predicate:   checker.IncorrectOutput(expected),
		MergeStates: cfg.MergeStates,
	}
	tasks := cluster.Split(injections, cfg.Tasks)
	reports := cluster.RunCtx(ctx, spec, tasks, cluster.Config{
		Workers:            cfg.Workers,
		TaskStateBudget:    cfg.TaskStateBudget,
		MaxFindingsPerTask: cfg.MaxFindingsPerTask,
	})
	sum := cluster.Summarize(reports)

	// Locate a finding inside the pattern-construction machinery (the
	// paper's dodash example lives there).
	patternPhase := 0
	if dodashPC, err := replace.DodashDelimCallPC(prog); err == nil {
		for _, f := range sum.Findings {
			if f.Injection.PC <= dodashPC+40 && f.Injection.PC >= dodashPC-40 {
				patternPhase++
			}
		}
	}

	res.rowf("program: replace, %d instructions, %d register-error injections", prog.Len(), len(injections))
	res.rowf("workload: pattern %q, substitution %q, line %q", cfg.Pattern, cfg.Substitution, cfg.Line)
	res.rowf("tasks: %d launched, %d completed, %d completed empty (benign or crash), %d with incorrect-outcome findings, %d incomplete",
		sum.Tasks, sum.Completed, sum.CompletedEmpty, sum.CompletedWithFinds, sum.Incomplete)
	res.rowf("states explored: %d; terminal outcomes: %s", sum.TotalStates, renderOutcomes(sum.Outcomes))
	if cfg.MergeStates {
		res.rowf("state merging: %d injections explored merged; %d shared-step observations and %d loop steps elided (verdicts unchanged)",
			sum.Merged, sum.Exec.StatesMerged, sum.Exec.StepsElided)
	}
	res.rowf("findings near the getccl/dodash call machinery: %d", patternPhase)

	res.check(sum.Tasks == cfg.Tasks || len(injections) < cfg.Tasks,
		"decomposition into the configured number of tasks", fmt.Sprintf("%d", sum.Tasks))
	res.check(sum.Completed > sum.Tasks/2,
		"a majority of tasks completes within budget (paper: 202 of 312)",
		fmt.Sprintf("%d of %d", sum.Completed, sum.Tasks))
	res.check(sum.CompletedWithFinds > 0,
		"a subset of tasks finds incorrect-outcome errors (paper: 54)",
		fmt.Sprintf("%d", sum.CompletedWithFinds))
	res.check(sum.CompletedEmpty > 0,
		"tasks that see only benign errors or crashes exist (paper: 148 of 202)",
		fmt.Sprintf("%d empty vs %d with findings", sum.CompletedEmpty, sum.CompletedWithFinds))

	res.notef("the paper's completed tasks split 148 empty / 54 with findings; this translation's tighter absolute addressing crashes less than gcc-generated MIPS, so corrupted registers more often reach the output and the split leans toward findings")
	res.notef("the Section 6.4 example scenario (corrupted dodash delimiter) is reproduced in isolation by internal/apps/replace's symbolic test and the examples/replace binary")
	res.finalize()
	return res, nil
}
