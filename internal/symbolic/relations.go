package symbolic

import (
	"fmt"
	"sort"
	"strings"

	"symplfied/internal/isa"
)

// Relational constraints between two roots, in the integer difference-logic
// fragment: x - y <= c. Comparisons between two distinct erroneous
// quantities (err-vs-err forks) translate here when both sides are affine
// with unit coefficient; the solver then prunes paths whose accumulated
// relations form a negative cycle — e.g. assuming x < y on one branch and
// later x > y on the same path. This extends the paper's model, which leaves
// err-vs-err comparisons wholly unconstrained, in the direction of its
// future-work item on reducing false positives.
//
// Equalities contribute both directions; disequalities are not expressible
// in difference logic and stay unconstrained (sound: no pruning).

// diffEdge encodes xTo - xFrom <= weight.
type diffEdge struct {
	from, to RootID
	weight   int64
}

// AddRel conjoins "t1 cmp t2" as a difference constraint when both terms
// have unit coefficient. It returns (handled, satisfiable): handled=false
// means the relation is outside the fragment and nothing was recorded;
// satisfiable=false means the path became infeasible.
func (s *Store) AddRel(t1 Term, cmp isa.Cmp, t2 Term) (handled, satisfiable bool) {
	if t1.Coeff != 1 || t2.Coeff != 1 || t1.Root == t2.Root {
		return false, true
	}
	// (x + o1) cmp (y + o2)  <=>  x - y cmp (o2 - o1).
	d, ok := subOvf(t2.Off, t1.Off)
	if !ok {
		return false, true
	}
	x, y := t1.Root, t2.Root
	switch cmp {
	case isa.CmpLe: // x - y <= d
		s.addEdge(y, x, d)
	case isa.CmpLt: // x - y <= d-1
		if d == minInt64 {
			s.markAllUnsat(x, y)
			return true, false
		}
		s.addEdge(y, x, d-1)
	case isa.CmpGe: // y - x <= -d
		nd, ok := negOvf(d)
		if !ok {
			return false, true
		}
		s.addEdge(x, y, nd)
	case isa.CmpGt: // y - x <= -d-1
		nd, ok := negOvf(d)
		if !ok || nd == minInt64 {
			return false, true
		}
		s.addEdge(x, y, nd-1)
	case isa.CmpEq: // both directions
		nd, ok := negOvf(d)
		if !ok {
			return false, true
		}
		s.addEdge(y, x, d)
		s.addEdge(x, y, nd)
	default: // CmpNe: outside difference logic
		return false, true
	}
	return true, s.relsSatisfiable()
}

func negOvf(v int64) (int64, bool) {
	if v == minInt64 {
		return 0, false
	}
	return -v, true
}

func (s *Store) addEdge(from, to RootID, weight int64) {
	s.materialize()
	s.relsSatCached = false
	// Keep only the tightest edge per pair.
	for i, e := range s.rels {
		if e.from == from && e.to == to {
			if weight < e.weight {
				s.rels[i].weight = weight
			}
			return
		}
	}
	s.rels = append(s.rels, diffEdge{from: from, to: to, weight: weight})
}

// markAllUnsat poisons the involved roots (used for degenerate overflows).
func (s *Store) markAllUnsat(roots ...RootID) {
	for _, r := range roots {
		s.markRootUnsat(r)
	}
}

// relsSatisfiable answers "no negative cycle?" over the difference graph,
// reusing the cached verdict when neither the relations nor any root's
// bounds changed since the last solve — a forked child that learned nothing
// relational re-checks only its own delta, not the whole graph.
func (s *Store) relsSatisfiable() bool {
	if s.relsSatCached {
		return s.relsSat
	}
	sat := s.relsSolve()
	s.relsSat, s.relsSatCached = sat, true
	return sat
}

// relsSolve runs Bellman-Ford over the difference graph augmented with
// the per-root interval bounds (a virtual zero node): satisfiable iff no
// negative cycle. This is sound and complete for the conjunction of
// difference constraints and bounds (disequalities excluded, which only
// makes the check conservative).
func (s *Store) relsSolve() bool {
	if len(s.rels) == 0 {
		return true
	}
	// Nodes: involved roots plus the virtual zero node (-1).
	nodes := map[RootID]bool{}
	for _, e := range s.rels {
		nodes[e.from] = true
		nodes[e.to] = true
	}
	type edge struct {
		from, to RootID
		w        int64
	}
	const zero = RootID(-1)
	var edges []edge
	for _, e := range s.rels {
		edges = append(edges, edge{e.from, e.to, e.weight})
	}
	for r := range nodes {
		c := s.cons[r]
		if c == nil {
			continue
		}
		if !c.Satisfiable() {
			return false
		}
		// x <= hi: edge zero -> x with weight hi.
		if c.hasHi {
			edges = append(edges, edge{zero, r, c.hi})
		}
		// x >= lo: edge x -> zero with weight -lo.
		if c.hasLo {
			nl, ok := negOvf(c.lo)
			if !ok {
				continue // extreme bound: skip (conservative)
			}
			edges = append(edges, edge{r, zero, nl})
		}
	}

	dist := map[RootID]int64{zero: 0}
	for r := range nodes {
		dist[r] = 0
	}
	n := len(dist)
	for i := 0; i < n; i++ {
		changed := false
		for _, e := range edges {
			du, okU := dist[e.from]
			if !okU {
				continue
			}
			if nd, ok := addOvf(du, e.w); ok {
				if dv, okV := dist[e.to]; okV && nd < dv {
					dist[e.to] = nd
					changed = true
				}
			}
		}
		if !changed {
			return true
		}
		if i == n-1 && changed {
			return false // relaxation still progressing: negative cycle
		}
	}
	return true
}

// RelsKey returns a canonical encoding of the difference constraints for
// state hashing.
func (s *Store) RelsKey() string {
	if len(s.rels) == 0 {
		return ""
	}
	parts := make([]string, len(s.rels))
	for i, e := range s.rels {
		parts[i] = fmt.Sprintf("e#%d-e#%d<=%d", e.to, e.from, e.weight)
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}
