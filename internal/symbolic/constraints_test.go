package symbolic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"symplfied/internal/isa"
)

func TestConstraintsBasics(t *testing.T) {
	c := NewConstraints()
	if !c.Satisfiable() || !c.Unconstrained() {
		t.Fatal("fresh constraints wrong")
	}
	if !c.AddCmp(isa.CmpGt, 1) {
		t.Fatal("x > 1 unsatisfiable")
	}
	if !c.AddCmp(isa.CmpLe, 5) {
		t.Fatal("x > 1 && x <= 5 unsatisfiable")
	}
	for v, want := range map[int64]bool{1: false, 2: true, 5: true, 6: false} {
		if got := c.Admits(v); got != want {
			t.Errorf("Admits(%d) = %v, want %v", v, got, want)
		}
	}
	if w, ok := c.Witness(); !ok || !c.Admits(w) {
		t.Errorf("witness %d invalid", w)
	}
}

func TestConstraintsEquality(t *testing.T) {
	c := NewConstraints()
	c.AddCmp(isa.CmpEq, 7)
	if v, ok := c.Exact(); !ok || v != 7 {
		t.Fatalf("Exact = %d, %v", v, ok)
	}
	if c.AddCmp(isa.CmpNe, 7) {
		t.Fatal("x == 7 && x != 7 satisfiable")
	}
}

func TestConstraintsContradictions(t *testing.T) {
	cases := []struct {
		atoms []struct {
			cmp isa.Cmp
			v   int64
		}
	}{
		{[]struct {
			cmp isa.Cmp
			v   int64
		}{{isa.CmpGt, 5}, {isa.CmpLt, 5}}},
		{[]struct {
			cmp isa.Cmp
			v   int64
		}{{isa.CmpGe, 10}, {isa.CmpLe, 9}}},
		{[]struct {
			cmp isa.Cmp
			v   int64
		}{{isa.CmpEq, 1}, {isa.CmpEq, 2}}},
		{[]struct {
			cmp isa.Cmp
			v   int64
		}{{isa.CmpGe, 3}, {isa.CmpLe, 3}, {isa.CmpNe, 3}}},
	}
	for i, tc := range cases {
		c := NewConstraints()
		sat := true
		for _, a := range tc.atoms {
			sat = c.AddCmp(a.cmp, a.v)
		}
		if sat || c.Satisfiable() {
			t.Errorf("case %d: contradiction not detected: %s", i, c)
		}
	}
}

// TestConstraintsBoundaryNormalization: disequalities at interval end points
// tighten the bounds (the solver's redundancy elimination).
func TestConstraintsBoundaryNormalization(t *testing.T) {
	c := NewConstraints()
	c.AddCmp(isa.CmpGe, 3)
	c.AddCmp(isa.CmpLe, 5)
	c.AddCmp(isa.CmpNe, 3)
	c.AddCmp(isa.CmpNe, 5)
	if v, ok := c.Exact(); !ok || v != 4 {
		t.Fatalf("normalization: Exact = %d, %v (%s)", v, ok, c)
	}
	if c.AddCmp(isa.CmpNe, 4) {
		t.Fatal("excluding the last remaining value stayed satisfiable")
	}
}

func TestConstraintsExtremeBounds(t *testing.T) {
	c := NewConstraints()
	if c.AddCmp(isa.CmpGt, maxInt64) {
		t.Error("x > MaxInt64 satisfiable")
	}
	c = NewConstraints()
	if c.AddCmp(isa.CmpLt, minInt64) {
		t.Error("x < MinInt64 satisfiable")
	}
	c = NewConstraints()
	if !c.AddCmp(isa.CmpGe, maxInt64) {
		t.Error("x >= MaxInt64 unsatisfiable")
	}
	if v, ok := c.Exact(); ok && v != maxInt64 {
		t.Errorf("Exact = %d", v)
	}
}

func TestConstraintsClone(t *testing.T) {
	c := NewConstraints()
	c.AddCmp(isa.CmpGe, 1)
	c.AddCmp(isa.CmpNe, 3)
	d := c.Clone()
	d.AddCmp(isa.CmpLe, 2)
	if !c.Admits(5) {
		t.Error("clone mutation leaked into original")
	}
	if d.Admits(5) {
		t.Error("clone missing added constraint")
	}
}

func TestConstraintsKeyCanonical(t *testing.T) {
	a := NewConstraints()
	a.AddCmp(isa.CmpNe, 2)
	a.AddCmp(isa.CmpNe, 9)
	b := NewConstraints()
	b.AddCmp(isa.CmpNe, 9)
	b.AddCmp(isa.CmpNe, 2)
	if a.Key() != b.Key() {
		t.Errorf("keys differ for equal sets: %q vs %q", a.Key(), b.Key())
	}
}

// randomAtoms generates a bounded random conjunction.
func randomAtoms(r *rand.Rand) []struct {
	cmp isa.Cmp
	v   int64
} {
	n := r.Intn(6)
	atoms := make([]struct {
		cmp isa.Cmp
		v   int64
	}, n)
	cmps := []isa.Cmp{isa.CmpEq, isa.CmpNe, isa.CmpGt, isa.CmpLt, isa.CmpGe, isa.CmpLe}
	for i := range atoms {
		atoms[i].cmp = cmps[r.Intn(len(cmps))]
		atoms[i].v = int64(r.Intn(21) - 10)
	}
	return atoms
}

// Property: Admits agrees with direct evaluation of every added atom, and
// Witness (when satisfiable) admits.
func TestConstraintsSoundnessProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 3000; iter++ {
		atoms := randomAtoms(r)
		c := NewConstraints()
		for _, a := range atoms {
			c.AddCmp(a.cmp, a.v)
		}
		evalAll := func(x int64) bool {
			for _, a := range atoms {
				if !isa.EvalCmp(a.cmp, x, a.v) {
					return false
				}
			}
			return true
		}
		// Check agreement over a window covering all atom constants.
		for x := int64(-12); x <= 12; x++ {
			if c.Admits(x) != evalAll(x) {
				t.Fatalf("iter %d: Admits(%d) = %v, direct = %v, atoms %v, set %s",
					iter, x, c.Admits(x), evalAll(x), atoms, c)
			}
		}
		if w, ok := c.Witness(); ok {
			if !c.Admits(w) {
				t.Fatalf("iter %d: witness %d not admitted (%s)", iter, w, c)
			}
			if !evalAll(w) {
				t.Fatalf("iter %d: witness %d fails direct evaluation", iter, w)
			}
		} else {
			// Unsatisfiable: no x in the window may satisfy all atoms.
			for x := int64(-12); x <= 12; x++ {
				if evalAll(x) {
					t.Fatalf("iter %d: claimed unsat but %d satisfies %v", iter, x, atoms)
				}
			}
		}
	}
}

// Property: AddCmp order does not change the admitted set (confluence of the
// rewrite system, mirroring the paper's Maude coherence requirement).
func TestConstraintsOrderIndependenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 1500; iter++ {
		atoms := randomAtoms(r)
		c1 := NewConstraints()
		for _, a := range atoms {
			c1.AddCmp(a.cmp, a.v)
		}
		c2 := NewConstraints()
		for i := len(atoms) - 1; i >= 0; i-- {
			c2.AddCmp(atoms[i].cmp, atoms[i].v)
		}
		for x := int64(-12); x <= 12; x++ {
			if c1.Admits(x) != c2.Admits(x) {
				t.Fatalf("iter %d: order dependence at %d: %s vs %s", iter, x, c1, c2)
			}
		}
		if c1.Satisfiable() != c2.Satisfiable() {
			t.Fatalf("iter %d: satisfiability order dependence", iter)
		}
	}
}

// Property (testing/quick): an equality pin admits exactly that value.
func TestConstraintsEqPinProperty(t *testing.T) {
	f := func(v int64, probe int64) bool {
		c := NewConstraints()
		c.AddCmp(isa.CmpEq, v)
		return c.Admits(probe) == (probe == v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstraintsString(t *testing.T) {
	c := NewConstraints()
	if c.String() != "any" {
		t.Errorf("unconstrained String = %q", c.String())
	}
	c.AddCmp(isa.CmpEq, 3)
	if c.String() != "x == 3" {
		t.Errorf("pinned String = %q", c.String())
	}
	c.MarkUnsat()
	if c.String() != "unsatisfiable" {
		t.Errorf("unsat String = %q", c.String())
	}
	if !reflect.DeepEqual(c.Key(), "⊥") {
		t.Errorf("unsat Key = %q", c.Key())
	}
}
