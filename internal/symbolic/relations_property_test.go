package symbolic

import (
	"math/rand"
	"testing"

	"symplfied/internal/isa"
)

// TestRelationsSoundnessBruteForce compares the difference-logic solver
// against exhaustive small-domain search: for random conjunctions of
// relations and bounds over three roots, if the solver says unsatisfiable,
// no assignment in the domain window may satisfy everything; if it says
// satisfiable and the constraints only involve the window, some assignment
// must exist (the fragment is exact, so both directions hold when constants
// stay inside the window).
func TestRelationsSoundnessBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	cmps := []isa.Cmp{isa.CmpLt, isa.CmpLe, isa.CmpGt, isa.CmpGe, isa.CmpEq}

	const window = 4 // roots range over -4..4 in the brute force

	for iter := 0; iter < 2000; iter++ {
		s := NewStore()
		roots := []RootID{s.NewRoot(), s.NewRoot(), s.NewRoot()}

		type relAtom struct {
			a, b int
			off1 int64
			off2 int64
			cmp  isa.Cmp
		}
		type boundAtom struct {
			root int
			cmp  isa.Cmp
			v    int64
		}
		var rels []relAtom
		var bounds []boundAtom

		solverSat := true
		for n := r.Intn(5); n > 0 && solverSat; n-- {
			a, b := r.Intn(3), r.Intn(3)
			if a == b {
				continue
			}
			atom := relAtom{
				a: a, b: b,
				off1: int64(r.Intn(5) - 2),
				off2: int64(r.Intn(5) - 2),
				cmp:  cmps[r.Intn(len(cmps))],
			}
			rels = append(rels, atom)
			t1, _ := FreshTerm(roots[a]).AddConst(atom.off1)
			t2, _ := FreshTerm(roots[b]).AddConst(atom.off2)
			handled, sat := s.AddRel(t1, atom.cmp, t2)
			if !handled {
				t.Fatalf("iter %d: unit-coefficient relation not handled", iter)
			}
			solverSat = sat
		}
		for n := r.Intn(3); n > 0 && solverSat; n-- {
			atom := boundAtom{
				root: r.Intn(3),
				cmp:  []isa.Cmp{isa.CmpGe, isa.CmpLe}[r.Intn(2)],
				v:    int64(r.Intn(2*window+1) - window),
			}
			bounds = append(bounds, atom)
			solverSat = s.ConstrainRoot(roots[atom.root], atom.cmp, atom.v)
			if solverSat {
				solverSat = s.Satisfiable()
			}
		}
		if solverSat {
			solverSat = s.Satisfiable()
		}

		// Brute force over the window.
		bruteSat := false
		for x := int64(-window); x <= window && !bruteSat; x++ {
			for y := int64(-window); y <= window && !bruteSat; y++ {
				for z := int64(-window); z <= window && !bruteSat; z++ {
					vals := []int64{x, y, z}
					ok := true
					for _, a := range rels {
						if !isa.EvalCmp(a.cmp, vals[a.a]+a.off1, vals[a.b]+a.off2) {
							ok = false
							break
						}
					}
					if ok {
						for _, bnd := range bounds {
							if !isa.EvalCmp(bnd.cmp, vals[bnd.root], bnd.v) {
								ok = false
								break
							}
						}
					}
					bruteSat = ok
				}
			}
		}

		// Soundness: solver-unsat implies brute-unsat.
		if !solverSat && bruteSat {
			t.Fatalf("iter %d: solver pruned a satisfiable conjunction: rels %+v bounds %+v",
				iter, rels, bounds)
		}
		// Completeness within the fragment and window: brute-unsat over a
		// window large enough to contain all offsets means the difference
		// system really is unsat; the solver must agree unless satisfying
		// assignments exist only outside the window, which bounded atoms
		// prevent when at least one bound pins each root. We only assert
		// the solver's claim when it says unsat (soundness), which is the
		// property the checker's pruning relies on.
		_ = bruteSat
	}
}
