package symbolic

import (
	"testing"

	"symplfied/internal/isa"
)

func twoRoots(t *testing.T) (*Store, Term, Term) {
	t.Helper()
	s := NewStore()
	x := FreshTerm(s.NewRoot())
	y := FreshTerm(s.NewRoot())
	return s, x, y
}

func TestAddRelContradiction(t *testing.T) {
	s, x, y := twoRoots(t)
	handled, sat := s.AddRel(x, isa.CmpLt, y) // x < y
	if !handled || !sat {
		t.Fatalf("x < y: handled=%v sat=%v", handled, sat)
	}
	handled, sat = s.AddRel(x, isa.CmpGt, y) // x > y: contradiction
	if !handled {
		t.Fatal("x > y not handled")
	}
	if sat {
		t.Fatal("x < y && x > y satisfiable")
	}
	if s.Satisfiable() {
		t.Fatal("store satisfiable after contradiction")
	}
}

func TestAddRelTransitivity(t *testing.T) {
	s := NewStore()
	x := FreshTerm(s.NewRoot())
	y := FreshTerm(s.NewRoot())
	z := FreshTerm(s.NewRoot())
	for _, step := range []struct {
		a   Term
		cmp isa.Cmp
		b   Term
	}{
		{x, isa.CmpLt, y},
		{y, isa.CmpLt, z},
	} {
		if handled, sat := s.AddRel(step.a, step.cmp, step.b); !handled || !sat {
			t.Fatalf("chain step rejected: handled=%v sat=%v", handled, sat)
		}
	}
	// z < x closes a negative cycle.
	if _, sat := s.AddRel(z, isa.CmpLt, x); sat {
		t.Fatal("x < y < z < x satisfiable")
	}
}

func TestAddRelEquality(t *testing.T) {
	s, x, y := twoRoots(t)
	if handled, sat := s.AddRel(x, isa.CmpEq, y); !handled || !sat {
		t.Fatal("x == y rejected")
	}
	// x < y now contradicts.
	if _, sat := s.AddRel(x, isa.CmpLt, y); sat {
		t.Fatal("x == y && x < y satisfiable")
	}
}

func TestAddRelWithOffsets(t *testing.T) {
	s, x, y := twoRoots(t)
	// (x + 5) <= (y + 2)  <=>  x - y <= -3.
	xo, _ := x.AddConst(5)
	yo, _ := y.AddConst(2)
	if handled, sat := s.AddRel(xo, isa.CmpLe, yo); !handled || !sat {
		t.Fatal("offset relation rejected")
	}
	// y <= x - 4  <=>  y - x <= -4; combined: x <= y - 3 <= x - 7: cycle.
	yo2 := y
	xo2, _ := x.AddConst(-4)
	if _, sat := s.AddRel(yo2, isa.CmpLe, xo2); sat {
		t.Fatal("cyclic offset relations satisfiable")
	}
}

func TestAddRelCombinesWithBounds(t *testing.T) {
	s, x, y := twoRoots(t)
	// x > y, y >= 10, x <= 9: infeasible only through the bounds.
	if handled, sat := s.AddRel(x, isa.CmpGt, y); !handled || !sat {
		t.Fatal("x > y rejected")
	}
	if !s.ConstrainRoot(y.Root, isa.CmpGe, 10) {
		t.Fatal("y >= 10 rejected")
	}
	if !s.ConstrainRoot(x.Root, isa.CmpLe, 9) {
		t.Fatal("x <= 9 rejected per-root (expected: intervals alone allow it)")
	}
	if s.Satisfiable() {
		t.Fatal("x > y && y >= 10 && x <= 9 satisfiable")
	}
}

func TestAddRelOutsideFragment(t *testing.T) {
	s, x, y := twoRoots(t)
	// Non-unit coefficient: not handled, nothing recorded.
	x2, _, _ := x.MulConst(2)
	if handled, sat := s.AddRel(x2, isa.CmpLt, y); handled || !sat {
		t.Fatalf("non-unit coeff: handled=%v sat=%v", handled, sat)
	}
	// Same root: not handled here (the affine difference path covers it).
	if handled, _ := s.AddRel(x, isa.CmpLt, x); handled {
		t.Fatal("same-root relation handled by difference logic")
	}
	// Disequality: outside the fragment.
	if handled, _ := s.AddRel(x, isa.CmpNe, y); handled {
		t.Fatal("disequality handled by difference logic")
	}
}

func TestRelsCloneAndKey(t *testing.T) {
	s, x, y := twoRoots(t)
	s.AddRel(x, isa.CmpLt, y)
	c := s.Clone()
	if _, sat := c.AddRel(x, isa.CmpGt, y); sat {
		t.Fatal("clone missed the relation")
	}
	if !s.Satisfiable() {
		t.Fatal("clone contradiction leaked into original")
	}
	if s.Key() == NewStore().Key() {
		t.Fatal("relations missing from the state key")
	}
}

func TestAddRelTightestEdgeWins(t *testing.T) {
	s, x, y := twoRoots(t)
	xo, _ := x.AddConst(0)
	s.AddRel(xo, isa.CmpLe, y) // x - y <= 0
	xo5, _ := x.AddConst(5)
	s.AddRel(xo5, isa.CmpLe, y) // x - y <= -5 (tighter)
	// y <= x + 4 => y - x <= 4; with x - y <= -5 the cycle is -1: infeasible.
	yo := y
	xo4, _ := x.AddConst(4)
	if _, sat := s.AddRel(yo, isa.CmpLe, xo4); sat {
		t.Fatal("tightest edge not kept")
	}
}
