package symbolic

import "symplfied/internal/isa"

// Operand is a value together with its symbolic term when the value is err.
// HasTerm is false for an err of unknown lineage (the executor then mints a
// fresh root).
type Operand struct {
	Val     isa.Value
	Term    Term
	HasTerm bool
}

// ConcreteOperand wraps a concrete integer.
func ConcreteOperand(n int64) Operand { return Operand{Val: isa.Int(n)} }

// ErrOperand wraps err with a known term.
func ErrOperand(t Term) Operand { return Operand{Val: isa.Err(), Term: t, HasTerm: true} }

// BinResult describes the outcome of propagating a binary operation over
// possibly-erroneous operands, following the paper's error-propagation
// equations (Section 5.2).
type BinResult struct {
	// Val is the result value: concrete, or err.
	Val isa.Value
	// Term is the affine term for an err result; HasTerm is false when the
	// result is err of no trackable lineage (the executor mints a root).
	Term    Term
	HasTerm bool
	// DivZero reports a definite division by zero (concrete zero divisor):
	// the machine raises the "div-zero" exception unconditionally.
	DivZero bool
	// ForkOnDivisor reports that the divisor is err, so execution must fork:
	// one successor raises "div-zero" under the constraint divisor == 0, the
	// other continues with an err result under divisor != 0 (the paper's
	// "eq I / err = if isEqual(err, 0) then throw ... else err").
	ForkOnDivisor bool
	// Divisor is the err divisor operand when ForkOnDivisor is set.
	Divisor Operand
}

// PropagateBin evaluates op over x and y. When affine is true, results that
// are affine functions of a single root keep a term (enabling the constraint
// solver to translate later comparisons back to the root); when false, every
// erroneous result loses lineage, reproducing the paper's coarser model.
func PropagateBin(op isa.BinOp, x, y Operand, affine bool) BinResult {
	xc, xConc := x.Val.Concrete()
	yc, yConc := y.Val.Concrete()

	if xConc && yConc {
		v, err := isa.EvalBin(op, xc, yc)
		if err != nil {
			return BinResult{DivZero: true}
		}
		return BinResult{Val: isa.Int(v)}
	}

	switch op {
	case isa.BinAdd:
		return propagateAdd(x, y, xc, yc, xConc, yConc, affine, false)
	case isa.BinSub:
		return propagateAdd(x, y, xc, yc, xConc, yConc, affine, true)
	case isa.BinMult:
		return propagateMult(x, y, xc, yc, xConc, yConc, affine)
	case isa.BinDiv, isa.BinMod:
		return propagateDiv(x, y, yc, yConc)
	case isa.BinAnd:
		// err & 0 == 0 regardless of the erroneous bits.
		if (xConc && xc == 0) || (yConc && yc == 0) {
			return BinResult{Val: isa.Int(0)}
		}
		return errResult()
	case isa.BinSll, isa.BinSrl, isa.BinSra:
		// 0 shifted by anything is 0.
		if xConc && xc == 0 {
			return BinResult{Val: isa.Int(0)}
		}
		return errResult()
	default:
		return errResult()
	}
}

// errResult is an err of no trackable lineage.
func errResult() BinResult { return BinResult{Val: isa.Err()} }

func propagateAdd(x, y Operand, xc, yc int64, xConc, yConc, affine, sub bool) BinResult {
	if !affine {
		return errResult()
	}
	switch {
	case xConc: // concrete ± err
		if !y.HasTerm {
			return errResult()
		}
		if sub {
			// xc - t = (-t) + xc
			nt, ok := y.Term.Neg()
			if !ok {
				return errResult()
			}
			return termOrErr(nt.AddConst(xc))
		}
		return termOrErr(y.Term.AddConst(xc))
	case yConc: // err ± concrete
		if !x.HasTerm {
			return errResult()
		}
		if sub {
			return termOrErr(x.Term.AddConst(-yc))
		}
		return termOrErr(x.Term.AddConst(yc))
	default: // err ± err
		if !x.HasTerm || !y.HasTerm || x.Term.Root != y.Term.Root {
			return errResult()
		}
		var (
			out     Term
			c       int64
			isConst bool
			ok      bool
		)
		if sub {
			out, c, isConst, ok = x.Term.SubTerm(y.Term)
		} else {
			out, c, isConst, ok = x.Term.AddTerm(y.Term)
		}
		if !ok {
			return errResult()
		}
		if isConst {
			return BinResult{Val: isa.Int(c)}
		}
		return BinResult{Val: isa.Err(), Term: out, HasTerm: true}
	}
}

func propagateMult(x, y Operand, xc, yc int64, xConc, yConc, affine bool) BinResult {
	// The paper's "err * I = if I == 0 then 0 else err" applies in both
	// affine and strict modes.
	if (xConc && xc == 0) || (yConc && yc == 0) {
		return BinResult{Val: isa.Int(0)}
	}
	if !affine {
		return errResult()
	}
	switch {
	case xConc:
		if !y.HasTerm {
			return errResult()
		}
		return termMulOrErr(y.Term, xc)
	case yConc:
		if !x.HasTerm {
			return errResult()
		}
		return termMulOrErr(x.Term, yc)
	default:
		// err * err is not affine in a single root.
		return errResult()
	}
}

func propagateDiv(x, y Operand, yc int64, yConc bool) BinResult {
	if yConc {
		if yc == 0 {
			return BinResult{DivZero: true}
		}
		// err / nonzero-concrete: integer division is not affine; err.
		return errResult()
	}
	// The divisor is err: fork on divisor == 0.
	return BinResult{ForkOnDivisor: true, Divisor: y, Val: isa.Err()}
}

func termOrErr(t Term, ok bool) BinResult {
	if !ok {
		return errResult()
	}
	return BinResult{Val: isa.Err(), Term: t, HasTerm: true}
}

func termMulOrErr(t Term, c int64) BinResult {
	out, isZero, ok := t.MulConst(c)
	if !ok {
		return errResult()
	}
	if isZero {
		return BinResult{Val: isa.Int(0)}
	}
	return BinResult{Val: isa.Err(), Term: out, HasTerm: true}
}

// CmpDecision classifies a comparison over possibly-erroneous operands.
type CmpDecision int

// Comparison decisions.
const (
	// CmpTrue / CmpFalse: the comparison is determined without forking.
	CmpTrue CmpDecision = iota + 1
	CmpFalse
	// CmpFork: the comparison involves err and both outcomes are possible;
	// the executor forks and records path constraints (the paper's rewrite
	// rules "rl isEqual(I, err) => true" / "=> false").
	CmpFork
)

// DecideCmp decides cmp over x and y. Two operands carrying the *same*
// affine term denote the same machine word, so reflexive comparisons resolve
// deterministically — a refinement over the paper's single-symbol model that
// removes a class of false positives (e.g. "beq $r $r l" after injection).
func DecideCmp(cmp isa.Cmp, x, y Operand) CmpDecision {
	xc, xConc := x.Val.Concrete()
	yc, yConc := y.Val.Concrete()
	if xConc && yConc {
		if isa.EvalCmp(cmp, xc, yc) {
			return CmpTrue
		}
		return CmpFalse
	}
	if x.HasTerm && y.HasTerm && x.Term.Equal(y.Term) {
		// Identical symbolic value: v cmp v.
		switch cmp {
		case isa.CmpEq, isa.CmpGe, isa.CmpLe:
			return CmpTrue
		default:
			return CmpFalse
		}
	}
	return CmpFork
}
