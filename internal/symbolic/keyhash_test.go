package symbolic

import (
	"strconv"
	"testing"

	"symplfied/internal/isa"
)

// TestDecimalMatchesFormatInt checks the allocation-free decimal feed hashes
// the exact characters strconv renders, across sign and extreme values.
func TestDecimalMatchesFormatInt(t *testing.T) {
	for _, n := range []int64{0, 1, -1, 9, 10, -10, 5_000_000_000, -5_000_000_000,
		1<<63 - 1, -1 << 63} {
		want := NewHash64()
		want.Str(strconv.FormatInt(n, 10))
		got := NewHash64()
		got.Decimal(n)
		if got.Sum() != want.Sum() {
			t.Errorf("Decimal(%d) hashed %#x, rendered digits hash %#x", n, got.Sum(), want.Sum())
		}
	}
}

// TestStoreKeyHashInsertionOrderIndependent checks the commutative folds: two
// stores holding the same content built in different orders must render the
// same Key and produce the same hash.
func TestStoreKeyHashInsertionOrderIndependent(t *testing.T) {
	build := func(order []int) *Store {
		s := NewStore()
		roots := map[int]RootID{}
		for i := 0; i < 3; i++ {
			roots[i] = s.NewRoot()
		}
		for _, i := range order {
			s.SetTerm(isa.RegLoc(isa.Reg(i+1)), FreshTerm(roots[i]))
			s.ConstrainTerm(FreshTerm(roots[i]), isa.CmpGt, int64(i*10))
		}
		return s
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 0, 1})
	if a.Key() != b.Key() {
		t.Fatalf("stores with equal content render different keys:\n  %q\n  %q", a.Key(), b.Key())
	}
	ha, hb := NewHash64(), NewHash64()
	a.KeyHash(&ha)
	b.KeyHash(&hb)
	if ha.Sum() != hb.Sum() {
		t.Errorf("stores with equal keys hash differently: %#x vs %#x", ha.Sum(), hb.Sum())
	}
}

// TestStoreCloneCopyOnWrite checks the lazy Clone: mutating either side after
// a clone must not show through to the other, for terms, constraints, and
// difference relations alike.
func TestStoreCloneCopyOnWrite(t *testing.T) {
	s := NewStore()
	r1 := s.NewRoot()
	r2 := s.NewRoot()
	s.SetTerm(isa.RegLoc(1), FreshTerm(r1))
	s.SetTerm(isa.RegLoc(2), FreshTerm(r2))
	s.ConstrainTerm(FreshTerm(r1), isa.CmpLe, 100)
	s.AddRel(FreshTerm(r1), isa.CmpLt, FreshTerm(r2))
	key := s.Key() + "|" + s.RelsKey()

	c := s.Clone()
	if got := c.Key() + "|" + c.RelsKey(); got != key {
		t.Fatalf("fresh clone differs from parent:\n  %q\n  %q", key, got)
	}

	// Mutate the clone three ways; the parent must be untouched.
	c.ConstrainTerm(FreshTerm(r1), isa.CmpGe, 50)
	c.SetTerm(isa.RegLoc(3), FreshTerm(c.NewRoot()))
	c.AddRel(FreshTerm(r2), isa.CmpLt, FreshTerm(r1))
	if got := s.Key() + "|" + s.RelsKey(); got != key {
		t.Errorf("clone mutations leaked into parent:\n  was %q\n  now %q", key, got)
	}

	// And the other direction.
	base := c.Key() + "|" + c.RelsKey()
	s.Clear(isa.RegLoc(1))
	s.ConstrainTerm(FreshTerm(r2), isa.CmpEq, 7)
	if got := c.Key() + "|" + c.RelsKey(); got != base {
		t.Errorf("parent mutations leaked into clone:\n  was %q\n  now %q", base, got)
	}
}

// TestStoreCloneChainCopyOnWrite exercises clone-of-clone sharing, the shape
// a BFS frontier produces: one materialization must not disturb siblings.
func TestStoreCloneChainCopyOnWrite(t *testing.T) {
	s := NewStore()
	r := s.NewRoot()
	s.SetTerm(isa.RegLoc(1), FreshTerm(r))
	a := s.Clone()
	b := a.Clone()
	keyA := a.Key()

	b.ConstrainTerm(FreshTerm(r), isa.CmpLt, 3)
	if a.Key() != keyA {
		t.Error("grandchild mutation leaked into child")
	}
	if s.Key() != keyA {
		t.Error("grandchild mutation leaked into root")
	}
	keyB := b.Key()
	a.ConstrainTerm(FreshTerm(r), isa.CmpGt, 9)
	if b.Key() != keyB {
		t.Error("child mutation leaked into already-materialized grandchild")
	}
}
