package symbolic

import (
	"strings"
	"sync"
	"sync/atomic"
)

// Hash-consing of constraint sets. Every constraint set a Store records is
// interned: mutated copies are canonicalized through a global table so that
// structurally equal sets are represented by one immutable *Constraints.
//
// The interning invariants are:
//
//   - pointer equality implies structural equality: two interned sets are
//     the same set iff they are the same pointer;
//   - interned sets are immutable: the mutating methods (AddCmp, MarkUnsat)
//     panic on an interned set, so a canonical pointer can be shared by any
//     number of stores, goroutines, and cached snapshots without copying;
//   - the content hash is computed once at intern time and cached, so state
//     keying (Store.KeyHash) costs O(roots) instead of re-hashing every
//     bound and disequality of every set.
//
// Interning is what makes constraint scopes (Store.Push/Pop) and
// copy-on-write cloning O(1): a snapshot captures map shells whose values
// are guaranteed never to change underneath it.

// internShards is the number of lock shards; a power of two so the hash can
// be masked. 64 keeps contention negligible for a worker pool of realistic
// size while staying tiny.
const internShards = 64

type internShard struct {
	mu sync.Mutex
	m  map[uint64][]*Constraints
}

var internTab [internShards]internShard

var (
	internHits   atomic.Int64
	internMisses atomic.Int64
)

// Intern returns the canonical immutable representative of c's content,
// registering it if the content is new. The argument is not retained when a
// representative already exists; when it is retained, a private copy is
// stored so later caller mutations cannot alias the table. Safe for
// concurrent use.
func Intern(c *Constraints) *Constraints {
	if c.interned {
		return c
	}
	h := NewHash64()
	c.hashInto(&h)
	sum := h.Sum()
	sh := &internTab[sum&(internShards-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.m == nil {
		sh.m = make(map[uint64][]*Constraints)
	}
	for _, e := range sh.m[sum] {
		if equalContent(e, c) {
			internHits.Add(1)
			return e
		}
	}
	internMisses.Add(1)
	cp := c.Clone()
	cp.hash = sum
	cp.interned = true
	sh.m[sum] = append(sh.m[sum], cp)
	return cp
}

// internedEmpty is the canonical unconstrained set, shared by every fresh
// root in every store.
var internedEmpty = Intern(NewConstraints())

// equalContent reports structural equality of two constraint sets.
func equalContent(a, b *Constraints) bool {
	if a.unsat != b.unsat || a.hasLo != b.hasLo || a.hasHi != b.hasHi ||
		(a.hasLo && a.lo != b.lo) || (a.hasHi && a.hi != b.hi) ||
		len(a.ne) != len(b.ne) {
		return false
	}
	for v := range a.ne {
		if _, ok := b.ne[v]; !ok {
			return false
		}
	}
	return true
}

// InternStats returns the global intern-table hit/miss counters: hits are
// canonicalizations that found an existing representative. The counters are
// process-wide (the table is shared by all stores and goroutines), so they
// feed live metrics, not per-injection reports.
func InternStats() (hits, misses int64) {
	return internHits.Load(), internMisses.Load()
}

// Disjunction is the constraint of a merged state: a choice between the
// symbolic stores of the control-flow paths that were fused at a
// post-dominator. It is the ite-free normal form of ite-style merging — each
// disjunct carries the whole constraint world of one path — which keeps the
// per-world solver queries (affine inversion + difference logic) unchanged.
type Disjunction struct {
	// Worlds holds one store per fused path, in deterministic merge order.
	Worlds []*Store
}

// Satisfiable reports whether any disjunct is satisfiable.
func (d *Disjunction) Satisfiable() bool {
	for _, w := range d.Worlds {
		if w.Satisfiable() {
			return true
		}
	}
	return false
}

// Describe renders the disjunction for reports, one world per disjunct.
func (d *Disjunction) Describe() string {
	if len(d.Worlds) == 0 {
		return "no symbolic state"
	}
	parts := make([]string, len(d.Worlds))
	for i, w := range d.Worlds {
		parts[i] = "(" + w.Describe() + ")"
	}
	return strings.Join(parts, " ∨ ")
}
