package symbolic

import (
	"testing"

	"symplfied/internal/isa"
)

// storeFingerprint captures everything observable about a store.
func storeFingerprint(s *Store) (string, uint64) {
	h := NewHash64()
	s.KeyHash(&h)
	return s.Key(), h.Sum()
}

// TestScopePushPopBalance drives deep chains of push / constrain / pop —
// the shape the executor's fork feasibility pre-checks produce — and
// verifies the store is restored exactly at every depth, including with
// clones taken between Push and Pop (the copy-on-write hazard).
func TestScopePushPopBalance(t *testing.T) {
	cases := []struct {
		name  string
		depth int
		step  func(s *Store, r RootID, lvl int)
	}{
		{"interval-tightening", 64, func(s *Store, r RootID, lvl int) {
			s.ConstrainRoot(r, isa.CmpGe, int64(lvl))
			s.ConstrainRoot(r, isa.CmpLe, int64(lvl+100))
		}},
		{"disequalities", 64, func(s *Store, r RootID, lvl int) {
			s.ConstrainRoot(r, isa.CmpNe, int64(lvl))
		}},
		{"fresh-roots-and-terms", 32, func(s *Store, r RootID, lvl int) {
			nr := s.NewRoot()
			s.SetTerm(isa.RegLoc(isa.Reg(lvl%30)), FreshTerm(nr))
			s.ConstrainRoot(nr, isa.CmpEq, int64(lvl))
		}},
		{"relations", 32, func(s *Store, r RootID, lvl int) {
			nr := s.NewRoot()
			s.AddRel(FreshTerm(r), isa.CmpLt, FreshTerm(nr))
		}},
		{"unsat-then-pop", 16, func(s *Store, r RootID, lvl int) {
			s.ConstrainRoot(r, isa.CmpGt, 10)
			s.ConstrainRoot(r, isa.CmpLt, 5) // now unsatisfiable
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewStore()
			root := s.Inject(isa.RegLoc(4))
			s.ConstrainRoot(root, isa.CmpGe, -1000)

			type level struct {
				scope    Scope
				key      string
				hash     uint64
				sat      bool
				snapshot *Store // clone taken inside the scope, must survive Pop
			}
			var stack []level
			for lvl := 0; lvl < tc.depth; lvl++ {
				key, hash := storeFingerprint(s)
				stack = append(stack, level{scope: s.Push(), key: key, hash: hash, sat: s.Satisfiable()})
				tc.step(s, root, lvl)
				stack[len(stack)-1].snapshot = s.Clone()
			}
			// Pop all the way back down, checking restoration at each level.
			for lvl := tc.depth - 1; lvl >= 0; lvl-- {
				l := stack[lvl]
				snapKey, snapHash := storeFingerprint(l.snapshot)
				s.Pop(l.scope)
				key, hash := storeFingerprint(s)
				if key != l.key || hash != l.hash {
					t.Fatalf("%s depth %d: Pop did not restore the store:\n pre-Push  %q (%x)\n post-Pop  %q (%x)",
						tc.name, lvl, l.key, l.hash, key, hash)
				}
				if got := s.Satisfiable(); got != l.sat {
					t.Fatalf("%s depth %d: satisfiability flipped across Push/Pop: %v -> %v", tc.name, lvl, l.sat, got)
				}
				// The clone taken inside the scope must be untouched by Pop.
				if k, h := storeFingerprint(l.snapshot); k != snapKey || h != snapHash {
					t.Fatalf("%s depth %d: Pop corrupted a clone taken inside the scope", tc.name, lvl)
				}
			}
		})
	}
}

// TestScopeFeasibilityProbe is the intended use: probe a branch's
// feasibility on the parent store without cloning the state, then rewind.
func TestScopeFeasibilityProbe(t *testing.T) {
	s := NewStore()
	root := s.Inject(isa.RegLoc(2))
	if !s.ConstrainRoot(root, isa.CmpGe, 10) {
		t.Fatal("setup unsat")
	}
	term := FreshTerm(root)

	sc := s.Push()
	if s.ConstrainTerm(term, isa.CmpLt, 5) {
		t.Fatal("x>=10 && x<5 should be infeasible")
	}
	s.Pop(sc)

	// After the rewind the contradictory atom is gone.
	if !s.Satisfiable() {
		t.Fatal("store unsat after Pop")
	}
	if !s.ConstrainTerm(term, isa.CmpLt, 50) {
		t.Fatal("x>=10 && x<50 should be feasible")
	}
}

// TestInternPointerEquality pins the hash-consing invariant: structurally
// equal constraint sets intern to the same pointer, and interned sets refuse
// mutation.
func TestInternPointerEquality(t *testing.T) {
	build := func() *Constraints {
		c := NewConstraints()
		c.AddCmp(isa.CmpGe, 3)
		c.AddCmp(isa.CmpLe, 9)
		c.AddCmp(isa.CmpNe, 5)
		return c
	}
	a, b := Intern(build()), Intern(build())
	if a != b {
		t.Fatalf("equal content interned to distinct pointers %p %p", a, b)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mutating an interned Constraints did not panic")
		}
	}()
	a.AddCmp(isa.CmpEq, 4)
}
