// Package symbolic implements SymPLFIED's symbolic value domain: the single
// abstract error symbol err, the per-location constraint map, and the custom
// constraint solver the paper uses to prune infeasible forks (Section 5.2,
// "Constraint Tracking and Solving Sub-Model").
//
// Each independently erroneous quantity is a root variable. A location that
// currently holds err is mapped to an affine term coeff*root + off, so that
// constraints learned about a propagated copy (for example through "mult by a
// concrete value") can be translated back to the originating root. This
// refines the paper's model — which deliberately over-approximates by
// forgetting inter-location relations — in the direction the paper's own
// future work item (3) calls for ("augmenting the design of the constraint
// solver to reduce false-positives"). Setting Options.AffineTracking to false
// in the executor restores the paper's coarser behaviour for ablation.
package symbolic

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"symplfied/internal/isa"
)

// Constraints is a satisfiable-or-not conjunction of atomic constraints on a
// single integer-valued root variable: an optional inclusive lower bound, an
// optional inclusive upper bound, and a finite disequality set. Equalities
// are represented as lo == hi. The zero value means "unconstrained".
//
// A Constraints is in one of two lifecycle phases. Freshly built sets (from
// NewConstraints or Clone) are mutable scratch values: AddCmp and MarkUnsat
// refine them in place. Once a set is handed to Intern it is frozen forever
// — the mutators panic — and its canonical pointer may be shared freely;
// stores only ever hold interned sets (see intern.go for the invariants).
type Constraints struct {
	unsat bool
	hasLo bool
	lo    int64
	hasHi bool
	hi    int64
	ne    map[int64]struct{}

	// hash caches the canonical content hash (hashInto) and interned marks
	// the set as frozen in the global intern table. Both are set only by
	// Intern; Clone resets them, yielding a mutable copy.
	hash     uint64
	interned bool
}

// NewConstraints returns an unconstrained constraint set.
func NewConstraints() *Constraints { return &Constraints{} }

// Clone returns a mutable deep copy. Cloning an interned set is how stores
// mutate constraints: copy, refine, re-intern (Store.ConstrainRoot).
func (c *Constraints) Clone() *Constraints {
	out := &Constraints{
		unsat: c.unsat,
		hasLo: c.hasLo, lo: c.lo,
		hasHi: c.hasHi, hi: c.hi,
	}
	if len(c.ne) > 0 {
		out.ne = make(map[int64]struct{}, len(c.ne))
		for v := range c.ne {
			out.ne[v] = struct{}{}
		}
	}
	return out
}

// MarkUnsat forces the constraint set to be unsatisfiable. Panics on an
// interned set.
func (c *Constraints) MarkUnsat() {
	c.mutable()
	c.unsat = true
}

// mutable guards the mutating methods: interned sets are frozen and shared,
// so writing through one would corrupt every store holding the pointer.
func (c *Constraints) mutable() {
	if c.interned {
		panic("symbolic: mutation of an interned Constraints")
	}
}

// AddCmp conjoins the atomic constraint "root cmp v". It returns false if the
// set became unsatisfiable (the caller should prune the state: a false
// positive per Section 3.2). Panics on an interned set.
func (c *Constraints) AddCmp(cmp isa.Cmp, v int64) bool {
	c.mutable()
	if c.unsat {
		return false
	}
	switch cmp {
	case isa.CmpEq:
		c.addLo(v)
		c.addHi(v)
	case isa.CmpNe:
		c.addNe(v)
	case isa.CmpGt:
		if v == maxInt64 {
			c.unsat = true
		} else {
			c.addLo(v + 1)
		}
	case isa.CmpGe:
		c.addLo(v)
	case isa.CmpLt:
		if v == minInt64 {
			c.unsat = true
		} else {
			c.addHi(v - 1)
		}
	case isa.CmpLe:
		c.addHi(v)
	default:
		// Unknown comparison: keep the set unchanged (sound: no pruning).
	}
	c.normalize()
	return c.Satisfiable()
}

const (
	maxInt64 = int64(^uint64(0) >> 1)
	minInt64 = -maxInt64 - 1
)

func (c *Constraints) addLo(v int64) {
	if !c.hasLo || v > c.lo {
		c.hasLo, c.lo = true, v
	}
}

func (c *Constraints) addHi(v int64) {
	if !c.hasHi || v < c.hi {
		c.hasHi, c.hi = true, v
	}
}

func (c *Constraints) addNe(v int64) {
	if c.ne == nil {
		c.ne = make(map[int64]struct{}, 4)
	}
	c.ne[v] = struct{}{}
}

// normalize eliminates redundancies: disequalities outside the bounds are
// dropped, disequalities at the bounds tighten the bounds, and an empty
// interval marks the set unsatisfiable. This is the solver's "eliminates
// redundancies in the constraint-set" duty from Section 5.2.
func (c *Constraints) normalize() {
	if c.unsat {
		return
	}
	for changed := true; changed; {
		changed = false
		if c.hasLo && c.hasHi && c.lo > c.hi {
			c.unsat = true
			return
		}
		for v := range c.ne {
			switch {
			case c.hasLo && v < c.lo, c.hasHi && v > c.hi:
				delete(c.ne, v)
				changed = true
			case c.hasLo && v == c.lo:
				if c.lo == maxInt64 {
					c.unsat = true
					return
				}
				c.lo++
				delete(c.ne, v)
				changed = true
			case c.hasHi && v == c.hi:
				if c.hi == minInt64 {
					c.unsat = true
					return
				}
				c.hi--
				delete(c.ne, v)
				changed = true
			}
		}
	}
}

// Satisfiable reports whether some integer satisfies the conjunction.
func (c *Constraints) Satisfiable() bool {
	if c.unsat {
		return false
	}
	if c.hasLo && c.hasHi {
		if c.lo > c.hi {
			return false
		}
		// After normalization the interval end-points are not excluded, so a
		// non-empty interval always contains a witness.
	}
	return true
}

// Exact returns the single satisfying value if the constraints pin the root
// to exactly one integer.
func (c *Constraints) Exact() (int64, bool) {
	if c.Satisfiable() && c.hasLo && c.hasHi && c.lo == c.hi {
		return c.lo, true
	}
	return 0, false
}

// Admits reports whether the concrete value v satisfies the conjunction. Used
// to validate findings against concrete re-injection (Section 6.2's
// SimpleScalar cross-validation).
func (c *Constraints) Admits(v int64) bool {
	if c.unsat {
		return false
	}
	if c.hasLo && v < c.lo {
		return false
	}
	if c.hasHi && v > c.hi {
		return false
	}
	_, excluded := c.ne[v]
	return !excluded
}

// Witness returns some satisfying value. ok is false when unsatisfiable.
func (c *Constraints) Witness() (int64, bool) {
	if !c.Satisfiable() {
		return 0, false
	}
	switch {
	case c.hasLo:
		return c.lo, true
	case c.hasHi:
		return c.hi, true
	}
	// Unbounded: pick a value outside the finite disequality set.
	for v := int64(0); ; v++ {
		if _, excluded := c.ne[v]; !excluded {
			return v, true
		}
	}
}

// Unconstrained reports whether no atomic constraint has been recorded.
func (c *Constraints) Unconstrained() bool {
	return !c.unsat && !c.hasLo && !c.hasHi && len(c.ne) == 0
}

// Key returns a canonical encoding for state hashing.
func (c *Constraints) Key() string {
	if c.unsat {
		return "⊥"
	}
	var b strings.Builder
	if c.hasLo {
		b.WriteString("L")
		b.WriteString(strconv.FormatInt(c.lo, 10))
	}
	if c.hasHi {
		b.WriteString("H")
		b.WriteString(strconv.FormatInt(c.hi, 10))
	}
	if len(c.ne) > 0 {
		vs := make([]int64, 0, len(c.ne))
		for v := range c.ne {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		b.WriteString("N")
		for _, v := range vs {
			b.WriteString(strconv.FormatInt(v, 10))
			b.WriteString(",")
		}
	}
	return b.String()
}

// String renders the constraints readably with x standing for the root,
// e.g. "1 < x, x <= 10, x =/= 3".
func (c *Constraints) String() string {
	if c.unsat {
		return "unsatisfiable"
	}
	if v, ok := c.Exact(); ok {
		return "x == " + strconv.FormatInt(v, 10)
	}
	parts := make([]string, 0, 3+len(c.ne))
	if c.hasLo {
		parts = append(parts, fmt.Sprintf("x >= %d", c.lo))
	}
	if c.hasHi {
		parts = append(parts, fmt.Sprintf("x <= %d", c.hi))
	}
	if len(c.ne) > 0 {
		vs := make([]int64, 0, len(c.ne))
		for v := range c.ne {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		for _, v := range vs {
			parts = append(parts, fmt.Sprintf("x =/= %d", v))
		}
	}
	if len(parts) == 0 {
		return "any"
	}
	return strings.Join(parts, ", ")
}
