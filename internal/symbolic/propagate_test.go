package symbolic

import (
	"testing"

	"symplfied/internal/isa"
)

// TestPropagationPaperEquations pins the paper's Section 5.2 error
// propagation equations:
//
//	err + I = err, I + err = err, err - I = err, I - err = err
//	err * I = err unless I == 0 (then 0); I * err symmetric
//	I / err forks on the divisor; err / 0 is div-zero
func TestPropagationPaperEquations(t *testing.T) {
	errOp := Operand{Val: isa.Err()} // no lineage: paper-strict either way
	five := ConcreteOperand(5)
	zero := ConcreteOperand(0)

	for _, affine := range []bool{true, false} {
		for _, c := range []struct {
			name string
			res  BinResult
			want string // "err", "0", "divzero", "fork"
		}{
			{"err+I", PropagateBin(isa.BinAdd, errOp, five, affine), "err"},
			{"I+err", PropagateBin(isa.BinAdd, five, errOp, affine), "err"},
			{"err-I", PropagateBin(isa.BinSub, errOp, five, affine), "err"},
			{"I-err", PropagateBin(isa.BinSub, five, errOp, affine), "err"},
			{"err*I", PropagateBin(isa.BinMult, errOp, five, affine), "err"},
			{"err*0", PropagateBin(isa.BinMult, errOp, zero, affine), "0"},
			{"0*err", PropagateBin(isa.BinMult, zero, errOp, affine), "0"},
			{"err/I", PropagateBin(isa.BinDiv, errOp, five, affine), "err"},
			{"err/0", PropagateBin(isa.BinDiv, errOp, zero, affine), "divzero"},
			{"I/err", PropagateBin(isa.BinDiv, five, errOp, affine), "fork"},
			{"err/err", PropagateBin(isa.BinDiv, errOp, errOp, affine), "fork"},
			{"err%0", PropagateBin(isa.BinMod, errOp, zero, affine), "divzero"},
			{"err&0", PropagateBin(isa.BinAnd, errOp, zero, affine), "0"},
			{"err&I", PropagateBin(isa.BinAnd, errOp, five, affine), "err"},
			{"err|I", PropagateBin(isa.BinOr, errOp, five, affine), "err"},
			{"0<<err", PropagateBin(isa.BinSll, zero, errOp, affine), "0"},
			{"I<<err", PropagateBin(isa.BinSll, five, errOp, affine), "err"},
		} {
			got := classify(c.res)
			if got != c.want {
				t.Errorf("affine=%v %s: got %s, want %s", affine, c.name, got, c.want)
			}
		}
	}
}

func classify(r BinResult) string {
	switch {
	case r.DivZero:
		return "divzero"
	case r.ForkOnDivisor:
		return "fork"
	case r.Val.IsErr():
		return "err"
	default:
		if v, _ := r.Val.Concrete(); v == 0 {
			return "0"
		}
		return "concrete"
	}
}

// TestAffineLineage: with affine tracking, arithmetic over err with one
// concrete operand preserves the root relationship exactly.
func TestAffineLineage(t *testing.T) {
	x := ErrOperand(FreshTerm(0)) // x = e0

	r := PropagateBin(isa.BinAdd, x, ConcreteOperand(5), true)
	if !r.HasTerm || r.Term.Coeff != 1 || r.Term.Off != 5 {
		t.Fatalf("e0+5: %+v", r)
	}
	r = PropagateBin(isa.BinSub, ConcreteOperand(10), x, true)
	if !r.HasTerm || r.Term.Coeff != -1 || r.Term.Off != 10 {
		t.Fatalf("10-e0: %+v", r)
	}
	r = PropagateBin(isa.BinMult, ConcreteOperand(3), x, true)
	if !r.HasTerm || r.Term.Coeff != 3 || r.Term.Off != 0 {
		t.Fatalf("3*e0: %+v", r)
	}

	// Same-root cancellation: (e0+5) - e0 = 5.
	y := ErrOperand(Term{Root: 0, Coeff: 1, Off: 5})
	r = PropagateBin(isa.BinSub, y, x, true)
	if r.Val.IsErr() {
		t.Fatalf("(e0+5)-e0 stayed err: %+v", r)
	}
	if v, _ := r.Val.Concrete(); v != 5 {
		t.Fatalf("(e0+5)-e0 = %d, want 5", v)
	}

	// Same-root doubling: e0 + e0 = 2*e0.
	r = PropagateBin(isa.BinAdd, x, x, true)
	if !r.HasTerm || r.Term.Coeff != 2 {
		t.Fatalf("e0+e0: %+v", r)
	}

	// err*err is never affine.
	r = PropagateBin(isa.BinMult, x, x, true)
	if !r.Val.IsErr() || r.HasTerm {
		t.Fatalf("e0*e0: %+v", r)
	}

	// With affine tracking off, lineage is always dropped.
	r = PropagateBin(isa.BinAdd, x, ConcreteOperand(5), false)
	if !r.Val.IsErr() || r.HasTerm {
		t.Fatalf("strict mode kept lineage: %+v", r)
	}
}

func TestDecideCmp(t *testing.T) {
	e0 := ErrOperand(FreshTerm(0))
	e0Copy := ErrOperand(FreshTerm(0))
	e1 := ErrOperand(FreshTerm(1))
	five := ConcreteOperand(5)

	cases := []struct {
		name string
		cmp  isa.Cmp
		x, y Operand
		want CmpDecision
	}{
		{"concrete true", isa.CmpLt, ConcreteOperand(1), five, CmpTrue},
		{"concrete false", isa.CmpGt, ConcreteOperand(1), five, CmpFalse},
		{"err vs concrete", isa.CmpEq, e0, five, CmpFork},
		{"concrete vs err", isa.CmpEq, five, e0, CmpFork},
		{"same term eq", isa.CmpEq, e0, e0Copy, CmpTrue},
		{"same term ne", isa.CmpNe, e0, e0Copy, CmpFalse},
		{"same term ge", isa.CmpGe, e0, e0Copy, CmpTrue},
		{"same term gt", isa.CmpGt, e0, e0Copy, CmpFalse},
		{"different roots", isa.CmpEq, e0, e1, CmpFork},
		{"unknown lineage", isa.CmpEq, Operand{Val: isa.Err()}, five, CmpFork},
	}
	for _, c := range cases {
		if got := DecideCmp(c.cmp, c.x, c.y); got != c.want {
			t.Errorf("%s: DecideCmp = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestPropagateBinConcrete(t *testing.T) {
	r := PropagateBin(isa.BinAdd, ConcreteOperand(2), ConcreteOperand(3), true)
	if v, ok := r.Val.Concrete(); !ok || v != 5 {
		t.Fatalf("2+3: %+v", r)
	}
	r = PropagateBin(isa.BinDiv, ConcreteOperand(2), ConcreteOperand(0), true)
	if !r.DivZero {
		t.Fatalf("2/0: %+v", r)
	}
}
