package symbolic

import (
	"testing"

	"symplfied/internal/isa"
)

func TestStoreInjectAndClear(t *testing.T) {
	s := NewStore()
	loc := isa.RegLoc(3)
	root := s.Inject(loc)
	tm, ok := s.Term(loc)
	if !ok || tm.Root != root || tm.Coeff != 1 || tm.Off != 0 {
		t.Fatalf("injected term %+v ok=%v", tm, ok)
	}
	s.Clear(loc)
	if _, ok := s.Term(loc); ok {
		t.Fatal("Clear did not remove the term")
	}
	// Root constraints survive clearing the location.
	if s.RootConstraints(root) == nil {
		t.Fatal("root constraints dropped on Clear")
	}
}

func TestStoreConstrainTerm(t *testing.T) {
	s := NewStore()
	root := s.NewRoot()
	tm := Term{Root: root, Coeff: 5, Off: -5} // 5x - 5

	// 5x - 5 >= 25  =>  x >= 6.
	if !s.ConstrainTerm(tm, isa.CmpGe, 25) {
		t.Fatal("satisfiable constraint rejected")
	}
	c := s.RootConstraints(root)
	if c.Admits(5) || !c.Admits(6) {
		t.Fatalf("translated constraint wrong: %s", c)
	}

	// Adding 5x - 5 < 25 (x < 6) makes it unsatisfiable.
	if s.ConstrainTerm(tm, isa.CmpLt, 25) {
		t.Fatal("contradiction not detected")
	}
	if s.Satisfiable() {
		t.Fatal("store satisfiable after contradiction")
	}
}

func TestStoreExactValue(t *testing.T) {
	s := NewStore()
	root := s.NewRoot()
	tm := Term{Root: root, Coeff: 2, Off: 1}
	if !s.ConstrainTerm(tm, isa.CmpEq, 7) { // 2x+1 == 7 => x == 3
		t.Fatal("equality rejected")
	}
	if v, ok := s.ExactValue(tm); !ok || v != 7 {
		t.Fatalf("ExactValue = %d, %v (want 7)", v, ok)
	}
	// A different term over the same root also concretizes.
	other := Term{Root: root, Coeff: -1, Off: 10}
	if v, ok := s.ExactValue(other); !ok || v != 7 {
		t.Fatalf("ExactValue(sibling) = %d, %v (want 10-3=7)", v, ok)
	}
}

func TestStoreEqualityImpossible(t *testing.T) {
	s := NewStore()
	root := s.NewRoot()
	tm := Term{Root: root, Coeff: 2} // even numbers only
	if s.ConstrainTerm(tm, isa.CmpEq, 7) {
		t.Fatal("2x == 7 accepted over the integers")
	}
}

func TestStoreDisequalityNonDivisibleIsNoop(t *testing.T) {
	s := NewStore()
	root := s.NewRoot()
	tm := Term{Root: root, Coeff: 2}
	if !s.ConstrainTerm(tm, isa.CmpNe, 7) { // always true
		t.Fatal("2x != 7 rejected")
	}
	if !s.RootConstraints(root).Unconstrained() {
		t.Fatalf("tautology recorded an atom: %s", s.RootConstraints(root))
	}
}

func TestStoreCloneIsolation(t *testing.T) {
	s := NewStore()
	loc := isa.RegLoc(1)
	root := s.Inject(loc)
	c := s.Clone()
	c.ConstrainTerm(FreshTerm(root), isa.CmpEq, 3)
	c.Clear(loc)
	if !s.RootConstraints(root).Unconstrained() {
		t.Error("clone constraint leaked into original")
	}
	if _, ok := s.Term(loc); !ok {
		t.Error("clone Clear leaked into original")
	}
	// Fresh roots in the clone do not collide with the original's.
	r2 := c.NewRoot()
	r3 := s.NewRoot()
	if r2 != r3 {
		// Same numbering is fine — they are independent stores — but both
		// must be distinct from the first root.
		if r2 == root || r3 == root {
			t.Error("root numbering collided")
		}
	}
}

func TestStoreLocsSorted(t *testing.T) {
	s := NewStore()
	s.Inject(isa.MemLoc(50))
	s.Inject(isa.RegLoc(9))
	s.Inject(isa.RegLoc(2))
	s.Inject(isa.MemLoc(-3))
	locs := s.Locs()
	want := []isa.Loc{isa.RegLoc(2), isa.RegLoc(9), isa.MemLoc(-3), isa.MemLoc(50)}
	if len(locs) != len(want) {
		t.Fatalf("Locs = %v", locs)
	}
	for i := range want {
		if locs[i] != want[i] {
			t.Fatalf("Locs[%d] = %v, want %v", i, locs[i], want[i])
		}
	}
}

func TestStoreKeyDeterministic(t *testing.T) {
	build := func(order []int) string {
		s := NewStore()
		for _, r := range order {
			s.Inject(isa.RegLoc(isa.Reg(r)))
		}
		return s.Key()
	}
	// Same injections in the same root order produce the same key.
	if build([]int{1, 2, 3}) != build([]int{1, 2, 3}) {
		t.Error("Key not deterministic")
	}
}

func TestStoreTermOrFresh(t *testing.T) {
	s := NewStore()
	loc := isa.RegLoc(4)
	tm := s.TermOrFresh(loc)
	tm2 := s.TermOrFresh(loc)
	if tm != tm2 {
		t.Error("TermOrFresh minted twice for the same location")
	}
}

func TestStoreDescribe(t *testing.T) {
	s := NewStore()
	if s.Describe() != "no symbolic state" {
		t.Errorf("empty Describe = %q", s.Describe())
	}
	root := s.Inject(isa.RegLoc(3))
	s.ConstrainTerm(FreshTerm(root), isa.CmpGt, 1)
	d := s.Describe()
	if d == "no symbolic state" || len(d) == 0 {
		t.Errorf("Describe = %q", d)
	}
}
