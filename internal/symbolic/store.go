package symbolic

import (
	"fmt"
	"sort"
	"strings"

	"symplfied/internal/isa"
)

// Store is the ConstraintMap of the paper (Section 5.2): it maps each
// register or memory location that currently holds err to the symbolic term
// describing its value, and each root variable to the constraints learned
// about it from comparisons, branches, and detectors along the current path.
//
// A Store belongs to exactly one symbolic state; forking a state clones it.
//
// The constraint sets inside cons are interned (intern.go): each value is an
// immutable canonical *Constraints, so cloning, snapshotting (Push/Pop), and
// hashing never copy or re-render a set. Mutation is functional — copy the
// set, refine it, re-intern, swap the pointer — which is exactly the delta a
// forked child re-checks: the one root the fork constrained.
type Store struct {
	terms map[isa.Loc]Term
	cons  map[RootID]*Constraints // values are interned, immutable
	rels  []diffEdge              // difference constraints between roots (relations.go)
	next  RootID
	// cow marks the maps (and the rels backing array) as possibly shared
	// with another Store after a Clone or Push; the first mutation copies
	// them (materialize). Most forked states never touch their constraint
	// map again — a control-flow fork constrains only the root involved,
	// and plenty of successors terminate without learning anything new — so
	// sharing until first write removes the dominant Clone allocation from
	// the search hot path.
	cow bool
	// relsSat caches the Bellman-Ford verdict over the difference graph;
	// valid while relsSatCached. Any constraint mutation invalidates it, so
	// the solver re-runs only when the relations or bounds actually moved —
	// the incremental half of "re-check only the delta".
	relsSat       bool
	relsSatCached bool
}

// NewStore returns an empty constraint map.
func NewStore() *Store {
	return &Store{
		terms: make(map[isa.Loc]Term),
		cons:  make(map[RootID]*Constraints),
	}
}

// Clone returns a logically independent copy, used when forking execution.
// The copy is lazy (copy-on-write): both stores share the underlying maps
// until one of them mutates, at which point the mutating side copies first.
// A Store belongs to exactly one symbolic state and states of one search are
// explored by one goroutine, so the sharing needs no synchronization.
func (s *Store) Clone() *Store {
	s.cow = true
	return &Store{
		terms:         s.terms,
		cons:          s.cons,
		rels:          s.rels,
		next:          s.next,
		cow:           true,
		relsSat:       s.relsSat,
		relsSatCached: s.relsSatCached,
	}
}

// materialize copies the shared map shells before the first mutation after a
// Clone or Push. The *Constraints values are interned and immutable, so only
// the shells are copied — never the sets themselves.
func (s *Store) materialize() {
	if !s.cow {
		return
	}
	terms := make(map[isa.Loc]Term, len(s.terms)+1)
	for l, t := range s.terms {
		terms[l] = t
	}
	cons := make(map[RootID]*Constraints, len(s.cons)+1)
	for r, c := range s.cons {
		cons[r] = c
	}
	var rels []diffEdge
	if len(s.rels) > 0 {
		rels = make([]diffEdge, len(s.rels))
		copy(rels, s.rels)
	}
	s.terms, s.cons, s.rels = terms, cons, rels
	s.cow = false
}

// Scope is a savepoint of the store's entire constraint state, captured by
// Push and restored by Pop. Because the maps are copy-on-write shells over
// immutable interned values, a scope is O(1) to take and to restore: Push
// freezes the current shells, the next mutation copies them, and Pop swaps
// the frozen shells back. The executor uses scopes to answer "would this
// branch be feasible?" on the parent store without cloning the whole state
// (see symexec's fork enumeration).
type Scope struct {
	terms         map[isa.Loc]Term
	cons          map[RootID]*Constraints
	rels          []diffEdge
	next          RootID
	relsSat       bool
	relsSatCached bool
}

// Push opens a constraint scope: a savepoint Pop rewinds to. Scopes nest;
// Pop in reverse order of Push.
func (s *Store) Push() Scope {
	s.cow = true
	return Scope{
		terms:         s.terms,
		cons:          s.cons,
		rels:          s.rels,
		next:          s.next,
		relsSat:       s.relsSat,
		relsSatCached: s.relsSatCached,
	}
}

// Pop rewinds the store to the savepoint: every term, constraint, relation,
// and root minted since the matching Push is discarded.
func (s *Store) Pop(sc Scope) {
	s.terms, s.cons, s.rels, s.next = sc.terms, sc.cons, sc.rels, sc.next
	s.relsSat, s.relsSatCached = sc.relsSat, sc.relsSatCached
	// The restored shells may still be shared with clones taken between
	// Push and Pop; stay copy-on-write.
	s.cow = true
}

// NewRoot introduces a fresh, unconstrained erroneous quantity.
func (s *Store) NewRoot() RootID {
	s.materialize()
	r := s.next
	s.next++
	s.cons[r] = internedEmpty
	return r
}

// SetTerm records that loc holds err with symbolic value t.
func (s *Store) SetTerm(loc isa.Loc, t Term) {
	s.materialize()
	s.terms[loc] = t
}

// Inject marks loc as holding a freshly injected err and returns its root.
func (s *Store) Inject(loc isa.Loc) RootID {
	r := s.NewRoot()
	s.SetTerm(loc, FreshTerm(r))
	return r
}

// Clear removes loc's term: the location was overwritten with a concrete
// value, so any constraint bookkeeping for it no longer applies. Root
// constraints are retained: they describe the erroneous quantity itself,
// which other locations may still reference.
func (s *Store) Clear(loc isa.Loc) {
	if _, ok := s.terms[loc]; !ok {
		return
	}
	s.materialize()
	delete(s.terms, loc)
}

// Term returns loc's symbolic term, if it holds err.
func (s *Store) Term(loc isa.Loc) (Term, bool) {
	t, ok := s.terms[loc]
	return t, ok
}

// TermOrFresh returns loc's term, minting a fresh root if the location holds
// err but no term was recorded (e.g. err stored through an unknown pointer).
func (s *Store) TermOrFresh(loc isa.Loc) Term {
	if t, ok := s.terms[loc]; ok {
		return t
	}
	t := FreshTerm(s.NewRoot()) // NewRoot materialized
	s.terms[loc] = t
	return t
}

// updateRoot applies the functional mutation protocol to one root's set:
// clone the interned value, let f refine the mutable copy, re-intern, swap
// the pointer. Returns f's verdict (conventionally "still satisfiable").
func (s *Store) updateRoot(r RootID, f func(*Constraints) bool) bool {
	s.materialize()
	cur, ok := s.cons[r]
	if !ok {
		cur = internedEmpty
	}
	mut := cur.Clone()
	sat := f(mut)
	s.cons[r] = Intern(mut)
	s.relsSatCached = false // bounds feed the difference-graph solve
	return sat
}

// ConstrainRoot conjoins the atomic constraint "r cmp v" on a root. It
// returns false when the root's set became unsatisfiable (the caller should
// prune the state).
func (s *Store) ConstrainRoot(r RootID, cmp isa.Cmp, v int64) bool {
	return s.updateRoot(r, func(c *Constraints) bool { return c.AddCmp(cmp, v) })
}

// markRootUnsat poisons one root's constraint set.
func (s *Store) markRootUnsat(r RootID) {
	s.updateRoot(r, func(c *Constraints) bool { c.MarkUnsat(); return false })
}

// ConstrainTerm conjoins "t cmp rhs" by inverting the affine map onto t's
// root. It returns false when the path becomes infeasible (caller prunes).
func (s *Store) ConstrainTerm(t Term, cmp isa.Cmp, rhs int64) bool {
	rootCmp, rootVal, tautology, ok := t.InvertCmp(cmp, rhs)
	if !ok {
		s.markRootUnsat(t.Root)
		return false
	}
	if tautology {
		return true
	}
	return s.ConstrainRoot(t.Root, rootCmp, rootVal)
}

// ExactValue reports whether the constraints pin t to a single concrete
// value, enabling the executor to concretize the location.
func (s *Store) ExactValue(t Term) (int64, bool) {
	c, ok := s.cons[t.Root]
	if !ok {
		return 0, false
	}
	root, ok := c.Exact()
	if !ok {
		return 0, false
	}
	coeff, ok1 := mulOvf(t.Coeff, root)
	if !ok1 {
		return 0, false
	}
	v, ok2 := addOvf(coeff, t.Off)
	if !ok2 {
		return 0, false
	}
	return v, true
}

// Satisfiable reports whether every root's constraint set is satisfiable.
// Terms are affine in a single root each, so per-root satisfiability implies
// global satisfiability.
func (s *Store) Satisfiable() bool {
	for _, c := range s.cons {
		if !c.Satisfiable() {
			return false
		}
	}
	return s.relsSatisfiable()
}

// Roots returns the roots in increasing order.
func (s *Store) Roots() []RootID {
	out := make([]RootID, 0, len(s.cons))
	for r := range s.cons {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RootConstraints returns the constraint set recorded for r, or nil.
func (s *Store) RootConstraints(r RootID) *Constraints { return s.cons[r] }

// Locs returns the locations currently holding err, registers first, both
// groups sorted.
func (s *Store) Locs() []isa.Loc {
	out := make([]isa.Loc, 0, len(s.terms))
	for l := range s.terms {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return locLess(out[i], out[j]) })
	return out
}

func locLess(a, b isa.Loc) bool {
	if a.IsMem != b.IsMem {
		return !a.IsMem
	}
	if a.IsMem {
		return a.Addr < b.Addr
	}
	return a.Reg < b.Reg
}

// Key returns a canonical encoding of the store for state hashing.
func (s *Store) Key() string {
	var b strings.Builder
	for _, l := range s.Locs() {
		t := s.terms[l]
		fmt.Fprintf(&b, "%s=%s;", l, t)
	}
	for _, r := range s.Roots() {
		c := s.cons[r]
		if c.Unconstrained() {
			continue
		}
		fmt.Fprintf(&b, "e#%d:%s;", r, c.Key())
	}
	b.WriteString(s.RelsKey())
	return b.String()
}

// Describe renders the store for reports: which locations hold err and what
// is known about each erroneous quantity.
func (s *Store) Describe() string {
	locs := s.Locs()
	if len(locs) == 0 && len(s.cons) == 0 {
		return "no symbolic state"
	}
	var b strings.Builder
	for i, l := range locs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", l, s.terms[l])
	}
	for _, r := range s.Roots() {
		c := s.cons[r]
		if c.Unconstrained() {
			continue
		}
		if b.Len() > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "e#%d: %s", r, strings.ReplaceAll(c.String(), "x", fmt.Sprintf("e#%d", r)))
	}
	if b.Len() == 0 {
		return "no symbolic state"
	}
	return b.String()
}
