package symbolic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"symplfied/internal/isa"
)

func TestTermArithmetic(t *testing.T) {
	x := FreshTerm(0)

	y, ok := x.AddConst(5)
	if !ok || y.Coeff != 1 || y.Off != 5 {
		t.Fatalf("AddConst: %+v, %v", y, ok)
	}
	z, isZero, ok := y.MulConst(3)
	if !ok || isZero || z.Coeff != 3 || z.Off != 15 {
		t.Fatalf("MulConst: %+v", z)
	}
	if _, isZero, _ := y.MulConst(0); !isZero {
		t.Fatal("MulConst(0) not zero")
	}
	n, ok := z.Neg()
	if !ok || n.Coeff != -3 || n.Off != -15 {
		t.Fatalf("Neg: %+v", n)
	}

	// Same-root addition and cancellation.
	sum, _, isConst, ok := z.AddTerm(n)
	if !ok || !isConst {
		t.Fatalf("AddTerm cancellation: %+v isConst=%v ok=%v", sum, isConst, ok)
	}
	diff, c, isConst, ok := y.SubTerm(y)
	if !ok || !isConst || c != 0 {
		t.Fatalf("SubTerm self: %+v c=%d", diff, c)
	}

	// Different roots cannot combine.
	other := FreshTerm(1)
	if _, _, _, ok := x.AddTerm(other); ok {
		t.Fatal("cross-root AddTerm succeeded")
	}
}

func TestTermOverflowDegrades(t *testing.T) {
	big := Term{Root: 0, Coeff: maxInt64, Off: 0}
	if _, _, ok := big.MulConst(2); ok {
		t.Error("coefficient overflow not detected")
	}
	bigOff := Term{Root: 0, Coeff: 1, Off: maxInt64}
	if _, ok := bigOff.AddConst(1); ok {
		t.Error("offset overflow not detected")
	}
	if _, ok := (Term{Root: 0, Coeff: minInt64}).Neg(); ok {
		t.Error("negation overflow not detected")
	}
}

func TestInvertCmpExactness(t *testing.T) {
	// Exhaustive small-space check: for every coeff, off, rhs and x in a
	// window, "coeff*x + off cmp rhs" must hold iff the translated root
	// atom holds for x. This is the solver's integer-exactness contract.
	cmps := []isa.Cmp{isa.CmpEq, isa.CmpNe, isa.CmpGt, isa.CmpLt, isa.CmpGe, isa.CmpLe}
	for coeff := int64(-4); coeff <= 4; coeff++ {
		for off := int64(-3); off <= 3; off++ {
			tm := Term{Root: 0, Coeff: coeff, Off: off}
			for rhs := int64(-6); rhs <= 6; rhs++ {
				for _, cmp := range cmps {
					rootCmp, rootVal, taut, ok := tm.InvertCmp(cmp, rhs)
					for x := int64(-10); x <= 10; x++ {
						direct := isa.EvalCmp(cmp, coeff*x+off, rhs)
						var translated bool
						switch {
						case !ok:
							translated = false
						case taut:
							translated = true
						default:
							translated = isa.EvalCmp(rootCmp, x, rootVal)
						}
						if direct != translated {
							t.Fatalf("InvertCmp(%d*x%+d %s %d): x=%d direct=%v translated=%v (atom x %s %d, taut=%v ok=%v)",
								coeff, off, cmp, rhs, x, direct, translated, rootCmp, rootVal, taut, ok)
						}
					}
				}
			}
		}
	}
}

func TestInvertCmpRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	cmps := []isa.Cmp{isa.CmpEq, isa.CmpNe, isa.CmpGt, isa.CmpLt, isa.CmpGe, isa.CmpLe}
	for iter := 0; iter < 5000; iter++ {
		coeff := int64(r.Intn(2001) - 1000)
		off := int64(r.Intn(2001) - 1000)
		rhs := int64(r.Intn(20001) - 10000)
		cmp := cmps[r.Intn(len(cmps))]
		tm := Term{Root: 0, Coeff: coeff, Off: off}
		rootCmp, rootVal, taut, ok := tm.InvertCmp(cmp, rhs)
		for probe := 0; probe < 8; probe++ {
			x := int64(r.Intn(4001) - 2000)
			direct := isa.EvalCmp(cmp, coeff*x+off, rhs)
			var translated bool
			switch {
			case !ok:
				translated = false
			case taut:
				translated = true
			default:
				translated = isa.EvalCmp(rootCmp, x, rootVal)
			}
			if direct != translated {
				t.Fatalf("iter %d: %d*x%+d %s %d at x=%d: direct=%v translated=%v",
					iter, coeff, off, cmp, rhs, x, direct, translated)
			}
		}
	}
}

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct {
		a, b, floor, ceil int64
	}{
		{7, 2, 3, 4},
		{-7, 2, -4, -3},
		{6, 3, 2, 2},
		{-6, 3, -2, -2},
		{0, 5, 0, 0},
		{1, 5, 0, 1},
		{-1, 5, -1, 0},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.floor {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.floor)
		}
		if got := ceilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		tm   Term
		want string
	}{
		{FreshTerm(0), "e#0"},
		{Term{Root: 1, Coeff: 5}, "5*e#1"},
		{Term{Root: 2, Coeff: 1, Off: -3}, "e#2-3"},
		{Term{Root: 3, Coeff: -2, Off: 7}, "-2*e#3+7"},
	}
	for _, c := range cases {
		if got := c.tm.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// evalTerm interprets a term at a concrete root value, ignoring overflow.
func evalTerm(tm Term, x int64) int64 { return tm.Coeff*x + tm.Off }

// Property (testing/quick): AddConst composes additively under evaluation.
func TestTermAddConstProperty(t *testing.T) {
	f := func(x int8, a, b int16) bool {
		tm := FreshTerm(0)
		t1, ok1 := tm.AddConst(int64(a))
		if !ok1 {
			return true
		}
		t2, ok2 := t1.AddConst(int64(b))
		if !ok2 {
			return true
		}
		return evalTerm(t2, int64(x)) == int64(x)+int64(a)+int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): MulConst commutes with evaluation.
func TestTermMulConstProperty(t *testing.T) {
	f := func(x int8, a int16, c int16) bool {
		tm := Term{Root: 0, Coeff: 1, Off: int64(a)}
		out, isZero, ok := tm.MulConst(int64(c))
		if !ok {
			return true
		}
		want := evalTerm(tm, int64(x)) * int64(c)
		if isZero {
			return want == 0 || c == 0
		}
		return evalTerm(out, int64(x)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): same-root AddTerm/SubTerm agree with evaluation.
func TestTermAddSubProperty(t *testing.T) {
	f := func(x int8, c1, c2, o1, o2 int8) bool {
		t1 := Term{Root: 0, Coeff: int64(c1), Off: int64(o1)}
		t2 := Term{Root: 0, Coeff: int64(c2), Off: int64(o2)}
		xa := int64(x)

		if sum, cv, isConst, ok := t1.AddTerm(t2); ok {
			want := evalTerm(t1, xa) + evalTerm(t2, xa)
			got := cv
			if !isConst {
				got = evalTerm(sum, xa)
			}
			if got != want {
				return false
			}
		}
		if diff, cv, isConst, ok := t1.SubTerm(t2); ok {
			want := evalTerm(t1, xa) - evalTerm(t2, xa)
			got := cv
			if !isConst {
				got = evalTerm(diff, xa)
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
