package symbolic

import "symplfied/internal/isa"

// 64-bit incremental state keying. The model checker's visited-set used to
// be keyed on State.Key(), a sorted canonical string rebuilt (with its maps
// sorted and every value rendered) for every explored state; on dedup-heavy
// searches that string construction dominated the hot loop. The replacement
// is an incremental FNV-1a hash over the same canonical encoding: ordered
// components stream straight into the hash, and unordered components (maps,
// sets) fold a per-entry hash with modular addition, which is commutative —
// so no sorting, no intermediate strings, no allocation.
//
// A 64-bit key can collide where the canonical strings would not; the
// checker cross-checks hashes against the full string encodings when
// collision checking is enabled (symexec.CheckKeyCollisions).

// fnvOffset64 and fnvPrime64 are the standard FNV-1a parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash64 is an incremental FNV-1a hasher for canonical state keying. The
// zero value is NOT ready; start from NewHash64 so equal byte streams yield
// equal sums.
type Hash64 uint64

// NewHash64 returns a hasher at the FNV-1a offset basis.
func NewHash64() Hash64 { return fnvOffset64 }

// Byte feeds one byte.
func (h *Hash64) Byte(b byte) {
	*h = (*h ^ Hash64(b)) * fnvPrime64
}

// Word feeds a 64-bit quantity, little-endian.
func (h *Hash64) Word(w uint64) {
	for i := 0; i < 8; i++ {
		h.Byte(byte(w))
		w >>= 8
	}
}

// Int feeds a signed integer.
func (h *Hash64) Int(n int64) { h.Word(uint64(n)) }

// Bool feeds a boolean as one byte.
func (h *Hash64) Bool(b bool) {
	if b {
		h.Byte(1)
	} else {
		h.Byte(0)
	}
}

// Decimal feeds the ASCII decimal rendering of n — the same characters
// strconv.FormatInt would produce — without allocating. Used where a
// canonical encoding is defined over rendered text (the output stream).
func (h *Hash64) Decimal(n int64) {
	var buf [20]byte
	u := uint64(n)
	if n < 0 {
		h.Byte('-')
		u = uint64(-n) // two's complement: correct magnitude even for MinInt64
	}
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
		if u == 0 {
			break
		}
	}
	for ; i < len(buf); i++ {
		h.Byte(buf[i])
	}
}

// Str feeds a string's bytes (no length prefix; callers add separators).
func (h *Hash64) Str(s string) {
	for i := 0; i < len(s); i++ {
		h.Byte(s[i])
	}
}

// Sum returns the current hash value.
func (h Hash64) Sum() uint64 { return uint64(h) }

// entryHash hashes one unordered-collection entry seeded from the FNV
// basis, for commutative folding via modular addition: the fold is
// order-independent and respects multiplicity, so it canonically encodes a
// map or multiset without sorting.
func entryHash(feed func(*Hash64)) uint64 {
	e := NewHash64()
	feed(&e)
	return e.Sum()
}

// contentHash returns the 64-bit canonical content hash of the set: the
// hashInto stream folded from the FNV basis. Interned sets return the value
// cached at intern time; the result is identical either way, so interned and
// scratch sets with equal content always hash equal.
func (c *Constraints) contentHash() uint64 {
	if c.interned {
		return c.hash
	}
	h := NewHash64()
	c.hashInto(&h)
	return h.Sum()
}

// hashInto feeds the constraint set's canonical content: the unsat flag,
// the bounds, and the disequality set folded commutatively.
func (c *Constraints) hashInto(h *Hash64) {
	h.Bool(c.unsat)
	h.Bool(c.hasLo)
	if c.hasLo {
		h.Int(c.lo)
	}
	h.Bool(c.hasHi)
	if c.hasHi {
		h.Int(c.hi)
	}
	var ne uint64
	for v := range c.ne {
		ne += entryHash(func(e *Hash64) { e.Int(v) })
	}
	h.Word(uint64(len(c.ne)))
	h.Word(ne)
}

// hashLoc feeds a location's identity.
func hashLoc(h *Hash64, l isa.Loc) {
	h.Bool(l.IsMem)
	if l.IsMem {
		h.Int(l.Addr)
	} else {
		h.Int(int64(l.Reg))
	}
}

// KeyHash folds the store's canonical content into h: the location→term
// map, the per-root constraint sets (unconstrained roots excluded, matching
// Key), and the difference-relation multiset. Unordered components fold
// commutatively, so the hash equals for exactly the stores whose canonical
// Key strings are equal — without sorting or rendering anything.
func (s *Store) KeyHash(h *Hash64) {
	var terms uint64
	for l, t := range s.terms {
		terms += entryHash(func(e *Hash64) {
			hashLoc(e, l)
			e.Int(int64(t.Root))
			e.Int(t.Coeff)
			e.Int(t.Off)
		})
	}
	h.Word(uint64(len(s.terms)))
	h.Word(terms)

	var cons uint64
	var constrained uint64
	for r, c := range s.cons {
		if c.Unconstrained() {
			continue
		}
		constrained++
		cons += entryHash(func(e *Hash64) {
			e.Int(int64(r))
			e.Word(c.contentHash())
		})
	}
	h.Word(constrained)
	h.Word(cons)

	var rels uint64
	for _, e := range s.rels {
		rels += entryHash(func(eh *Hash64) {
			eh.Int(int64(e.from))
			eh.Int(int64(e.to))
			eh.Int(e.weight)
		})
	}
	h.Word(uint64(len(s.rels)))
	h.Word(rels)
}
