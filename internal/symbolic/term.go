package symbolic

import (
	"fmt"

	"symplfied/internal/isa"
)

// RootID identifies an independent erroneous quantity introduced by a fault
// injection or by a propagation step whose result is not an affine function
// of a single existing root.
type RootID int32

// Term is the symbolic value of a location holding err, expressed as an
// affine function of one root: Coeff*root + Off. A freshly injected err is
// Term{Root: r, Coeff: 1, Off: 0}.
type Term struct {
	Root  RootID
	Coeff int64
	Off   int64
}

// FreshTerm returns the identity term for a root.
func FreshTerm(r RootID) Term { return Term{Root: r, Coeff: 1} }

// String renders the term with the root shown as e#N.
func (t Term) String() string {
	root := fmt.Sprintf("e#%d", t.Root)
	switch {
	case t.Coeff == 1 && t.Off == 0:
		return root
	case t.Off == 0:
		return fmt.Sprintf("%d*%s", t.Coeff, root)
	case t.Coeff == 1:
		return fmt.Sprintf("%s%+d", root, t.Off)
	default:
		return fmt.Sprintf("%d*%s%+d", t.Coeff, root, t.Off)
	}
}

// addOvf returns a+b, with ok=false on signed overflow.
func addOvf(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

// mulOvf returns a*b, with ok=false on signed overflow.
func mulOvf(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	// MinInt64 * -1 overflows, and the p/b check below cannot see it
	// because Go's division wraps the same way.
	if (a == minInt64 && b == -1) || (b == minInt64 && a == -1) {
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// AddConst returns the term t + c. ok is false on overflow, in which case the
// caller must degrade to a fresh root.
func (t Term) AddConst(c int64) (Term, bool) {
	off, ok := addOvf(t.Off, c)
	if !ok {
		return Term{}, false
	}
	t.Off = off
	return t, true
}

// MulConst returns the term t * c; the isZero result reports c == 0 (the
// product is the concrete 0, per the paper's "err * 0 = 0" equation).
func (t Term) MulConst(c int64) (out Term, isZero, ok bool) {
	if c == 0 {
		return Term{}, true, true
	}
	coeff, ok1 := mulOvf(t.Coeff, c)
	off, ok2 := mulOvf(t.Off, c)
	if !ok1 || !ok2 {
		return Term{}, false, false
	}
	return Term{Root: t.Root, Coeff: coeff, Off: off}, false, true
}

// Neg returns -t. ok is false on overflow.
func (t Term) Neg() (Term, bool) { return t.MulConstTerm(-1) }

// AddTerm returns t + u when both terms share a root. If the coefficients
// cancel, the result is the concrete constant returned in constVal.
func (t Term) AddTerm(u Term) (out Term, constVal int64, isConst, ok bool) {
	if t.Root != u.Root {
		return Term{}, 0, false, false
	}
	coeff, ok1 := addOvf(t.Coeff, u.Coeff)
	off, ok2 := addOvf(t.Off, u.Off)
	if !ok1 || !ok2 {
		return Term{}, 0, false, false
	}
	if coeff == 0 {
		return Term{}, off, true, true
	}
	return Term{Root: t.Root, Coeff: coeff, Off: off}, 0, false, true
}

// SubTerm returns t - u when both terms share a root; like AddTerm it may
// collapse to a constant.
func (t Term) SubTerm(u Term) (out Term, constVal int64, isConst, ok bool) {
	nu, okNeg := u.MulConstTerm(-1)
	if !okNeg {
		return Term{}, 0, false, false
	}
	return t.AddTerm(nu)
}

// MulConstTerm is MulConst for nonzero multipliers: ok is false when the
// multiplication overflows or c is zero (callers wanting the concrete-zero
// case use MulConst directly).
func (t Term) MulConstTerm(c int64) (Term, bool) {
	out, isZero, ok := t.MulConst(c)
	if !ok || isZero {
		return Term{}, false
	}
	return out, true
}

// Equal reports whether two terms denote the same affine function.
func (t Term) Equal(u Term) bool { return t == u }

// InvertCmp translates the constraint "t cmp rhs" into an atomic constraint
// on t's root. Results:
//
//   - ok=true, tautology=false: rootCmp/rootVal hold the translated atom.
//   - ok=true, tautology=true: the constraint is always true (no atom).
//   - ok=false: the constraint is unsatisfiable.
//
// The translation is exact over the integers (ceiling/floor division), which
// is what lets the solver prune false positives without losing soundness.
func (t Term) InvertCmp(cmp isa.Cmp, rhs int64) (rootCmp isa.Cmp, rootVal int64, tautology, ok bool) {
	c, k := t.Coeff, rhs
	var okSub bool
	if k, okSub = subOvf(rhs, t.Off); !okSub {
		// rhs - Off overflows int64: the comparison against such an extreme
		// bound cannot be translated exactly; treat as tautology (sound: we
		// simply learn nothing).
		return 0, 0, true, true
	}
	if c == 0 {
		// Degenerate: the "term" is the constant Off.
		if isa.EvalCmp(cmp, 0, k) {
			return 0, 0, true, true
		}
		return 0, 0, false, false
	}
	if c < 0 {
		// Multiply both sides by -1: flips the inequality direction.
		nc, ok1 := mulOvf(c, -1)
		nk, ok2 := mulOvf(k, -1)
		if !ok1 || !ok2 {
			return 0, 0, true, true
		}
		c, k = nc, nk
		cmp = cmp.Swap()
	}
	switch cmp {
	case isa.CmpEq:
		if k%c != 0 {
			return 0, 0, false, false
		}
		return isa.CmpEq, k / c, false, true
	case isa.CmpNe:
		if k%c != 0 {
			return 0, 0, true, true
		}
		return isa.CmpNe, k / c, false, true
	case isa.CmpGt: // c*x > k  <=>  x >= floor(k/c)+1
		f := floorDiv(k, c)
		if f == maxInt64 {
			return 0, 0, false, false
		}
		return isa.CmpGe, f + 1, false, true
	case isa.CmpGe: // c*x >= k <=>  x >= ceil(k/c)
		return isa.CmpGe, ceilDiv(k, c), false, true
	case isa.CmpLt: // c*x < k  <=>  x <= ceil(k/c)-1
		cl := ceilDiv(k, c)
		if cl == minInt64 {
			return 0, 0, false, false
		}
		return isa.CmpLe, cl - 1, false, true
	case isa.CmpLe: // c*x <= k <=>  x <= floor(k/c)
		return isa.CmpLe, floorDiv(k, c), false, true
	}
	return 0, 0, true, true
}

func subOvf(a, b int64) (int64, bool) {
	if b == minInt64 {
		if a >= 0 {
			return 0, false
		}
		return a - b, true
	}
	return addOvf(a, -b)
}

// floorDiv returns floor(a/b) for b > 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && a < 0 {
		q--
	}
	return q
}

// ceilDiv returns ceil(a/b) for b > 0.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && a > 0 {
		q++
	}
	return q
}
