package faults

import (
	"symplfied/internal/analysis"
	"symplfied/internal/isa"
)

// RegisterInjections enumerates the paper's register-error campaign
// (Section 6.1): for each instruction, err in each register the instruction
// reads, injected just before the instruction executes so the fault is
// guaranteed to activate. With sources=false it instead enumerates every
// architectural register at every instruction (the exhaustive 800x32 space
// the optimization prunes).
func RegisterInjections(prog *isa.Program, sources bool) []Injection {
	var out []Injection
	for pc := 0; pc < prog.Len(); pc++ {
		in := prog.At(pc)
		if sources {
			for _, r := range in.SrcRegs() {
				out = append(out, Injection{Class: ClassRegister, PC: pc, Loc: isa.RegLoc(r)})
			}
			continue
		}
		for r := isa.Reg(1); r < isa.NumRegs; r++ {
			out = append(out, Injection{Class: ClassRegister, PC: pc, Loc: isa.RegLoc(r)})
		}
	}
	return out
}

// RegisterInjectionsPruned enumerates the exhaustive register campaign
// (RegisterInjections with sources=false) minus the injections a liveness
// proof shows cannot propagate: err in a register that every path writes
// before reading is overwritten unread, so the exploration would be the
// fault-free continuation. This is the dataflow generalization of the
// paper's Section 6.1 syntactic pruning — the paper keeps only registers
// the instruction at the breakpoint reads; liveness additionally keeps
// registers read later without an intervening write, and additionally drops
// registers the instruction reads into a value nothing ever uses.
//
// The result is a strict pre-filter: pruned injections simply do not appear,
// so per-class totals shrink. To keep the benign rows in the report (one
// verdict per injection, as the paper's tables tally), enumerate the full
// space and set checker.Spec.PruneDeadInjections instead — the checker then
// classifies dead-register injections benign without exploring them.
//
// a may be nil, in which case the program is analyzed here without a
// detector table; campaigns with detectors must pass
// analysis.Analyze(prog, dets) so CHECK reads count as uses.
func RegisterInjectionsPruned(prog *isa.Program, a *analysis.Analysis) []Injection {
	if a == nil {
		a = analysis.Analyze(prog, nil)
	}
	all := RegisterInjections(prog, false)
	out := make([]Injection, 0, len(all))
	for _, inj := range all {
		if a.DeadAt(inj.PC, inj.Loc.Reg) {
			continue
		}
		out = append(out, inj)
	}
	return out
}

// RegisterInjectionsUsed enumerates err in each register an instruction
// uses — sources and destinations, the accounting of the paper's concrete
// campaigns ("source and destination registers of all instructions").
// Destination injections before the write are usually masked; they populate
// the benign bucket, as in the paper.
func RegisterInjectionsUsed(prog *isa.Program) []Injection {
	var out []Injection
	for pc := 0; pc < prog.Len(); pc++ {
		for _, r := range prog.At(pc).UsedRegs() {
			out = append(out, Injection{Class: ClassRegister, PC: pc, Loc: isa.RegLoc(r)})
		}
	}
	return out
}

// MemoryInjections enumerates memory errors activated at loads: for each
// load instruction, err in the word about to be read (the Table 1 cache/
// memory-bus rows: "err in target register of load instructions to the
// location" is subsumed by corrupting the loaded word just before the load).
func MemoryInjections(prog *isa.Program) []Injection {
	var out []Injection
	for pc := 0; pc < prog.Len(); pc++ {
		if prog.At(pc).Op == isa.OpLd {
			out = append(out, Injection{Class: ClassMemory, PC: pc, DynamicLoadAddr: true})
		}
	}
	return out
}

// StaticMemoryInjections enumerates err in each given memory word before
// each given instruction.
func StaticMemoryInjections(pcs []int, addrs []int64) []Injection {
	out := make([]Injection, 0, len(pcs)*len(addrs))
	for _, pc := range pcs {
		for _, a := range addrs {
			out = append(out, Injection{Class: ClassMemory, PC: pc, Loc: isa.MemLoc(a)})
		}
	}
	return out
}

// ControlInjections enumerates instruction-fetch errors: at each instruction,
// the PC is redirected to an arbitrary valid code location (Table 1, fetch
// row). Each Injection expands to prog.Len()-1 states when applied.
func ControlInjections(prog *isa.Program) []Injection {
	out := make([]Injection, 0, prog.Len())
	for pc := 0; pc < prog.Len(); pc++ {
		out = append(out, Injection{Class: ClassControl, PC: pc})
	}
	return out
}

// DecodeInjections enumerates instruction-decoder errors per Table 1:
//
//   - instructions with a destination: the destination is changed to each
//     other register (err in both), and the instruction is replaced by one
//     with no target (err in the original destination);
//   - instructions with no destination: replaced by an instruction writing
//     each register (err in the new wrong target).
//
// Memory-targeted mis-decodes are enumerated for stores (original target =
// the stored-to word is not statically known, so stores contribute the
// lost-target case through their data register instead).
func DecodeInjections(prog *isa.Program) []Injection {
	var out []Injection
	for pc := 0; pc < prog.Len(); pc++ {
		in := prog.At(pc)
		dsts := in.DstRegs()
		if len(dsts) > 0 {
			orig := isa.RegLoc(dsts[0])
			for r := isa.Reg(1); r < isa.NumRegs; r++ {
				if r == dsts[0] {
					continue
				}
				out = append(out, Injection{
					Class: ClassDecode, PC: pc,
					Decode: DecodeChangedTarget,
					Loc:    orig, NewLoc: isa.RegLoc(r),
				})
			}
			out = append(out, Injection{
				Class: ClassDecode, PC: pc,
				Decode: DecodeLostTarget,
				Loc:    orig,
			})
			continue
		}
		for r := isa.Reg(1); r < isa.NumRegs; r++ {
			out = append(out, Injection{
				Class: ClassDecode, PC: pc,
				Decode: DecodeNewTarget,
				NewLoc: isa.RegLoc(r),
			})
		}
	}
	return out
}

// ForClass enumerates the injections of a class over prog with the paper's
// default activation policy.
func ForClass(c Class, prog *isa.Program) []Injection {
	switch c {
	case ClassRegister:
		return RegisterInjections(prog, true)
	case ClassMemory:
		return MemoryInjections(prog)
	case ClassControl:
		return ControlInjections(prog)
	case ClassDecode:
		return DecodeInjections(prog)
	}
	return nil
}
