package faults

import (
	"strings"
	"testing"

	"symplfied/internal/asm"
	"symplfied/internal/isa"
	"symplfied/internal/symexec"
)

const sampleSrc = `
main:	li $1 10
	read $2
	add $3 $1 $2
	st $3 100($0)
	ld $4 100($0)
	beqi $4 0 done
	nop
	jal fn
done:	print $4
	halt
fn:	jr $31
`

func sampleProgram(t *testing.T) *isa.Program {
	t.Helper()
	return asm.MustParse("sample", sampleSrc).Program
}

func freshState(t *testing.T, prog *isa.Program) *symexec.State {
	t.Helper()
	return symexec.NewState(prog, nil, []int64{5}, symexec.DefaultOptions())
}

func TestRegisterInjectionsSourcesOnly(t *testing.T) {
	prog := sampleProgram(t)
	injs := RegisterInjections(prog, true)
	for _, inj := range injs {
		if inj.Class != ClassRegister {
			t.Fatalf("class %v", inj.Class)
		}
		srcs := prog.At(inj.PC).SrcRegs()
		found := false
		for _, r := range srcs {
			if isa.RegLoc(r) == inj.Loc {
				found = true
			}
		}
		if !found {
			t.Errorf("injection %v targets a register the instruction does not read", inj)
		}
	}
	// li/read/nop/halt/jal contribute no source registers; $0 bases are
	// excluded: add contributes 2; st 1; ld 0; beqi 1; print 1; jr 1.
	if len(injs) != 6 {
		t.Errorf("%d source injections, want 6", len(injs))
	}
}

func TestRegisterInjectionsExhaustive(t *testing.T) {
	prog := sampleProgram(t)
	injs := RegisterInjections(prog, false)
	if want := prog.Len() * (isa.NumRegs - 1); len(injs) != want {
		t.Errorf("%d exhaustive injections, want %d", len(injs), want)
	}
}

func TestRegisterInjectionsUsed(t *testing.T) {
	prog := sampleProgram(t)
	used := RegisterInjectionsUsed(prog)
	srcOnly := RegisterInjections(prog, true)
	if len(used) <= len(srcOnly) {
		t.Errorf("used (%d) should exceed sources-only (%d)", len(used), len(srcOnly))
	}
}

func TestMemoryInjectionsAtLoads(t *testing.T) {
	prog := sampleProgram(t)
	injs := MemoryInjections(prog)
	if len(injs) != 1 {
		t.Fatalf("%d memory injections, want 1 (one load)", len(injs))
	}
	if !injs[0].DynamicLoadAddr || prog.At(injs[0].PC).Op != isa.OpLd {
		t.Errorf("injection %+v not at the load", injs[0])
	}
}

func TestControlInjections(t *testing.T) {
	prog := sampleProgram(t)
	injs := ControlInjections(prog)
	if len(injs) != prog.Len() {
		t.Fatalf("%d control injections, want %d", len(injs), prog.Len())
	}
	st := freshState(t, prog)
	states, err := injs[0].Apply(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != prog.Len()-1 {
		t.Errorf("PC error fans out to %d states, want %d", len(states), prog.Len()-1)
	}
	seen := map[int]bool{}
	for _, s := range states {
		if s.PC == st.PC {
			t.Error("PC error includes the fault-free continuation")
		}
		seen[s.PC] = true
	}
	if len(seen) != len(states) {
		t.Error("duplicate redirection targets")
	}
}

func TestDecodeInjectionManifestations(t *testing.T) {
	prog := sampleProgram(t)
	st := freshState(t, prog)

	// Changed target: err in original and new destinations.
	inj := Injection{
		Class: ClassDecode, PC: 0, Decode: DecodeChangedTarget,
		Loc: isa.RegLoc(1), NewLoc: isa.RegLoc(7),
	}
	states, err := inj.Apply(st)
	if err != nil || len(states) != 1 {
		t.Fatalf("apply: %v, %d states", err, len(states))
	}
	if !states[0].Regs[1].IsErr() || !states[0].Regs[7].IsErr() {
		t.Error("changed-target manifestation wrong")
	}
	// The two targets carry independent roots (independent wrong values).
	t1, _ := states[0].Sym.Term(isa.RegLoc(1))
	t2, _ := states[0].Sym.Term(isa.RegLoc(7))
	if t1.Root == t2.Root {
		t.Error("changed-target roots aliased")
	}

	// Lost target: err only in the original destination.
	inj = Injection{Class: ClassDecode, PC: 0, Decode: DecodeLostTarget, Loc: isa.RegLoc(1)}
	states, err = inj.Apply(st)
	if err != nil {
		t.Fatal(err)
	}
	if !states[0].Regs[1].IsErr() || states[0].Regs[7].IsErr() {
		t.Error("lost-target manifestation wrong")
	}

	// New target: err only in the new wrong destination (at the nop, the
	// only no-target instruction, @6).
	inj = Injection{Class: ClassDecode, PC: 6, Decode: DecodeNewTarget, NewLoc: isa.RegLoc(9)}
	st2 := st.Clone()
	st2.PC = 6
	states, err = inj.Apply(st2)
	if err != nil {
		t.Fatal(err)
	}
	if !states[0].Regs[9].IsErr() {
		t.Error("new-target manifestation wrong")
	}
}

func TestDecodeEnumerationShape(t *testing.T) {
	prog := sampleProgram(t)
	counts := map[DecodeKind]int{}
	for _, inj := range DecodeInjections(prog) {
		counts[inj.Decode]++
	}
	if counts[DecodeChangedTarget] == 0 || counts[DecodeLostTarget] == 0 || counts[DecodeNewTarget] == 0 {
		t.Errorf("decode kinds missing: %v", counts)
	}
}

func TestInjectionApplyErrors(t *testing.T) {
	prog := sampleProgram(t)
	st := freshState(t, prog)

	// Wrong breakpoint.
	if _, err := (Injection{Class: ClassRegister, PC: 3, Loc: isa.RegLoc(1)}).Apply(st); err == nil {
		t.Error("mispositioned injection accepted")
	}
	// Zero register.
	if _, err := (Injection{Class: ClassRegister, PC: 0, Loc: isa.RegLoc(0)}).Apply(st); err == nil {
		t.Error("$0 injection accepted")
	}
	// Memory class with a register loc.
	if _, err := (Injection{Class: ClassMemory, PC: 0, Loc: isa.RegLoc(1)}).Apply(st); err == nil {
		t.Error("register loc for memory class accepted")
	}
	// Dynamic load address on a non-load.
	if _, err := (Injection{Class: ClassMemory, PC: 0, DynamicLoadAddr: true}).Apply(st); err == nil {
		t.Error("dynamic-load injection at non-load accepted")
	}
	// Decode without a kind.
	if _, err := (Injection{Class: ClassDecode, PC: 0}).Apply(st); err == nil {
		t.Error("decode injection without kind accepted")
	}
}

func TestPermanentInjection(t *testing.T) {
	prog := sampleProgram(t)
	st := freshState(t, prog)
	inj := Injection{Class: ClassRegister, PC: 0, Loc: isa.RegLoc(1), Permanent: true}
	states, err := inj.Apply(st)
	if err != nil {
		t.Fatal(err)
	}
	c := states[0]
	if _, stuck := c.Stuck[isa.RegLoc(1)]; !stuck {
		t.Fatal("permanent injection did not mark the location stuck")
	}
	if !strings.Contains(inj.String(), "permanent") {
		t.Errorf("String() lacks permanent marker: %s", inj)
	}
	// Executing "li $1 10" must NOT clear the stuck fault.
	if !c.StepInPlace() {
		t.Fatal("li refused in-place step")
	}
	if !c.Regs[1].IsErr() {
		t.Error("write to a stuck register overwrote the fault")
	}
}

func TestPermanentVariant(t *testing.T) {
	prog := sampleProgram(t)
	injs := RegisterInjections(prog, true)
	perm := PermanentVariant(injs)
	if len(perm) != len(injs) {
		t.Fatal("length changed")
	}
	for i := range perm {
		if !perm[i].Permanent {
			t.Fatal("flag not set")
		}
		if injs[i].Permanent {
			t.Fatal("original mutated")
		}
	}
}

func TestForClass(t *testing.T) {
	prog := sampleProgram(t)
	for _, c := range []Class{ClassRegister, ClassMemory, ClassControl, ClassDecode} {
		if len(ForClass(c, prog)) == 0 {
			t.Errorf("ForClass(%v) empty", c)
		}
	}
	if ForClass(Class(99), prog) != nil {
		t.Error("unknown class returned injections")
	}
}

func TestClassAndKindStrings(t *testing.T) {
	for _, c := range []Class{ClassRegister, ClassMemory, ClassControl, ClassDecode} {
		if strings.HasPrefix(c.String(), "class(") {
			t.Errorf("class %d lacks a name", int(c))
		}
	}
	for _, k := range []DecodeKind{DecodeChangedTarget, DecodeNewTarget, DecodeLostTarget} {
		if strings.HasPrefix(k.String(), "decode(") {
			t.Errorf("kind %d lacks a name", int(k))
		}
	}
}

func TestStaticMemoryInjections(t *testing.T) {
	injs := StaticMemoryInjections([]int{1, 3}, []int64{100, 200, 300})
	if len(injs) != 6 {
		t.Fatalf("%d injections, want 6", len(injs))
	}
	for _, inj := range injs {
		if inj.Class != ClassMemory || !inj.Loc.IsMem || inj.DynamicLoadAddr {
			t.Errorf("bad static memory injection %+v", inj)
		}
	}
	prog := sampleProgram(t)
	st := freshState(t, prog)
	st.PC = 1
	states, err := (Injection{Class: ClassMemory, PC: 1, Loc: isa.MemLoc(100)}).Apply(st)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := states[0].Mem[100]; !ok || !v.IsErr() {
		t.Error("static memory injection did not place err")
	}
}

func TestControlInjectionStrings(t *testing.T) {
	inj := Injection{Class: ClassControl, PC: 3}
	if !strings.Contains(inj.String(), "control error") {
		t.Errorf("String() = %q", inj)
	}
	mem := Injection{Class: ClassMemory, PC: 2, DynamicLoadAddr: true}
	if !strings.Contains(mem.String(), "loaded at") {
		t.Errorf("String() = %q", mem)
	}
	dec := Injection{Class: ClassDecode, PC: 1, Decode: DecodeLostTarget, Loc: isa.RegLoc(4)}
	if !strings.Contains(dec.String(), "lost-target") {
		t.Errorf("String() = %q", dec)
	}
}

// TestEnumerationsNeverDuplicateSites asserts every register enumeration
// yields each (PC, location, occurrence) site at most once, including over
// instructions whose operands alias the same register — a duplicate would
// double-charge the site's exploration against study budgets and skew every
// per-injection tally.
func TestEnumerationsNeverDuplicateSites(t *testing.T) {
	aliased := asm.MustParse("aliased", `
main:	read $1
	add $1 $1 $1
	mov $2 $2
	st $2 8($2)
	print $1
	halt
`).Program
	for _, tc := range []struct {
		name string
		injs []Injection
	}{
		{"used/sample", RegisterInjectionsUsed(sampleProgram(t))},
		{"used/aliased", RegisterInjectionsUsed(aliased)},
		{"sources/aliased", RegisterInjections(aliased, true)},
		{"exhaustive/aliased", RegisterInjections(aliased, false)},
		{"pruned/aliased", RegisterInjectionsPruned(aliased, nil)},
	} {
		seen := map[Injection]bool{}
		for _, inj := range tc.injs {
			if seen[inj] {
				t.Errorf("%s: duplicate injection site %s", tc.name, inj)
			}
			seen[inj] = true
		}
		if len(tc.injs) == 0 {
			t.Errorf("%s: empty enumeration", tc.name)
		}
	}
}
