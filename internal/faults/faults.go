// Package faults implements SymPLFIED's error model (paper Sections 3.3 and
// 5.2): transient errors in registers, memory and computation, represented by
// replacing architectural values with the symbolic err at a breakpoint. The
// computation-error categories of Table 1 (instruction decoder, address/data
// bus, functional unit, instruction fetch) are reduced to err placements in
// the locations each category can corrupt, plus PC redirection for fetch
// errors — exactly the paper's "modeling procedure" column.
//
// An Injection is one element of a fault class: a breakpoint (static PC and
// dynamic occurrence) plus a manifestation. The enumerators generate the
// paper's campaigns, e.g. "err in each register used by each instruction,
// injected just before that instruction" (Section 6.1).
package faults

import (
	"fmt"

	"symplfied/internal/isa"
	"symplfied/internal/symexec"
	"symplfied/internal/trace"
)

// Class identifies an error class (the user-selectable "class of hardware
// errors to be considered", Section 3.1).
type Class int

// Error classes.
const (
	// ClassRegister: transient error in a register file cell.
	ClassRegister Class = iota + 1
	// ClassMemory: transient error in a memory word (cache/memory bus
	// errors manifest here per Table 1).
	ClassMemory
	// ClassControl: instruction-fetch error; the PC is redirected to an
	// arbitrary but valid code location (Table 1, fetch mechanism row).
	ClassControl
	// ClassDecode: instruction-decoder error; one valid instruction turns
	// into another, modeled as err in the affected target locations
	// (Table 1, decoder row).
	ClassDecode
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassRegister:
		return "register"
	case ClassMemory:
		return "memory"
	case ClassControl:
		return "control"
	case ClassDecode:
		return "decode"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// DecodeKind refines ClassDecode per Table 1's decoder sub-rows.
type DecodeKind int

// Decode manifestations.
const (
	DecodeNone DecodeKind = iota
	// DecodeChangedTarget: an instruction writing to a destination has its
	// output target changed: err appears in both the original and the new
	// target.
	DecodeChangedTarget
	// DecodeNewTarget: an instruction with no target is replaced by one
	// with a target: err appears in the new, wrong target.
	DecodeNewTarget
	// DecodeLostTarget: an instruction with a destination is replaced by
	// one with no target (e.g. nop): err appears in the original target,
	// which retains its stale — now erroneous relative to the intended
	// computation — value.
	DecodeLostTarget
)

// String names the decode kind.
func (k DecodeKind) String() string {
	switch k {
	case DecodeNone:
		return "none"
	case DecodeChangedTarget:
		return "changed-target"
	case DecodeNewTarget:
		return "new-target"
	case DecodeLostTarget:
		return "lost-target"
	}
	return fmt.Sprintf("decode(%d)", int(k))
}

// Injection is one injectable fault.
type Injection struct {
	Class Class

	// PC is the breakpoint: the fault manifests just before the instruction
	// at PC executes (ensuring activation, Section 6.2 "Optimizations").
	PC int
	// Occurrence selects the dynamic occurrence of PC at which to inject
	// (1-based). 0 means 1.
	Occurrence int

	// Loc is the corrupted location for register/memory classes and the
	// original target for decode errors.
	Loc isa.Loc
	// DynamicLoadAddr, for ClassMemory, resolves Loc at injection time to
	// the address about to be read by the load instruction at PC.
	DynamicLoadAddr bool

	// Decode refines ClassDecode; NewLoc is the wrong target for
	// DecodeChangedTarget and DecodeNewTarget.
	Decode DecodeKind
	NewLoc isa.Loc

	// Permanent turns a register or memory error into a stuck-at fault:
	// the location holds the same unknown erroneous value for the rest of
	// the execution and writes to it are discarded. This implements the
	// paper's future-work extension (2) "modeling permanent errors in
	// hardware in addition to transient errors".
	Permanent bool
}

// String renders the injection for reports.
func (inj Injection) String() string {
	occ := inj.Occurrence
	if occ == 0 {
		occ = 1
	}
	kind := ""
	if inj.Permanent {
		kind = "permanent "
	}
	switch inj.Class {
	case ClassRegister:
		return fmt.Sprintf("%sregister error: err in %s before @%d (occurrence %d)", kind, inj.Loc, inj.PC, occ)
	case ClassMemory:
		if inj.DynamicLoadAddr {
			return fmt.Sprintf("memory error: err in word loaded at @%d (occurrence %d)", inj.PC, occ)
		}
		return fmt.Sprintf("memory error: err in %s before @%d (occurrence %d)", inj.Loc, inj.PC, occ)
	case ClassControl:
		return fmt.Sprintf("control error: PC redirected at @%d (occurrence %d)", inj.PC, occ)
	case ClassDecode:
		return fmt.Sprintf("decode error (%s): orig %s new %s at @%d (occurrence %d)", inj.Decode, inj.Loc, inj.NewLoc, inj.PC, occ)
	}
	return fmt.Sprintf("injection(class %d)", int(inj.Class))
}

// Apply manifests the injection on a symbolic state positioned at the
// breakpoint (state.PC == inj.PC), returning the resulting states. Control
// errors return one state per valid code location (the paper's
// nondeterministic PC redirection); all other classes return one state.
// The input state is not modified.
func (inj Injection) Apply(st *symexec.State) ([]*symexec.State, error) {
	if st.PC != inj.PC {
		return nil, fmt.Errorf("injection at @%d applied to state at @%d", inj.PC, st.PC)
	}
	switch inj.Class {
	case ClassRegister:
		if inj.Loc.IsMem || inj.Loc.Reg == isa.RegZero {
			return nil, fmt.Errorf("register injection needs a non-zero register, have %s", inj.Loc)
		}
		c := st.Clone()
		inj.manifest(c, inj.Loc)
		return []*symexec.State{c}, nil

	case ClassMemory:
		loc := inj.Loc
		if inj.DynamicLoadAddr {
			addr, err := loadAddr(st)
			if err != nil {
				return nil, err
			}
			loc = isa.MemLoc(addr)
		}
		if !loc.IsMem {
			return nil, fmt.Errorf("memory injection needs a memory location, have %s", loc)
		}
		c := st.Clone()
		inj.manifest(c, loc)
		return []*symexec.State{c}, nil

	case ClassControl:
		out := make([]*symexec.State, 0, st.Prog.Len())
		for pc := 0; pc < st.Prog.Len(); pc++ {
			if pc == st.PC {
				continue // redirection to the same location is the fault-free run
			}
			c := st.Clone()
			c.PC = pc
			c.Note(trace.KindControl, "fetch error: PC redirected from @%d to %s", inj.PC, st.Prog.Locate(pc))
			out = append(out, c)
		}
		return out, nil

	case ClassDecode:
		return inj.applyDecode(st)
	}
	return nil, fmt.Errorf("unknown injection class %d", int(inj.Class))
}

func (inj Injection) applyDecode(st *symexec.State) ([]*symexec.State, error) {
	c := st.Clone()
	switch inj.Decode {
	case DecodeChangedTarget:
		// err in the original and the new targets (Table 1 row 1).
		c.Inject(inj.Loc)
		c.Inject(inj.NewLoc)
	case DecodeNewTarget:
		// err in the new wrong target (Table 1 row 2).
		c.Inject(inj.NewLoc)
	case DecodeLostTarget:
		// err in the original target location (Table 1 row 3).
		c.Inject(inj.Loc)
	default:
		return nil, fmt.Errorf("decode injection needs a decode kind")
	}
	return []*symexec.State{c}, nil
}

// manifest places the fault into loc, transient or permanent.
func (inj Injection) manifest(st *symexec.State, loc isa.Loc) {
	if inj.Permanent {
		st.InjectPermanent(loc)
		return
	}
	st.Inject(loc)
}

// PermanentVariant returns copies of the injections with the Permanent flag
// set, for comparing transient and stuck-at campaigns over the same sites.
func PermanentVariant(injs []Injection) []Injection {
	out := make([]Injection, len(injs))
	copy(out, injs)
	for i := range out {
		out[i].Permanent = true
	}
	return out
}

// loadAddr computes the address about to be read by the load at st.PC.
func loadAddr(st *symexec.State) (int64, error) {
	if !st.Prog.ValidPC(st.PC) {
		return 0, fmt.Errorf("breakpoint @%d outside code", st.PC)
	}
	in := st.Prog.At(st.PC)
	if in.Op != isa.OpLd {
		return 0, fmt.Errorf("dynamic memory injection requires a load at @%d, have %s", st.PC, in.Op)
	}
	base := st.Regs[in.Rs]
	if in.Rs == isa.RegZero {
		base = isa.Int(0)
	}
	bc, ok := base.Concrete()
	if !ok {
		return 0, fmt.Errorf("load base register already erroneous at @%d", st.PC)
	}
	return bc + in.Imm, nil
}
