package asm_test

import (
	"math/rand"
	"strconv"
	"testing"

	"symplfied/internal/asm"
	"symplfied/internal/isa"
)

// randomInstr generates one random instruction of any renderable format,
// with branch targets constrained to [0, progLen).
func randomInstr(r *rand.Rand, progLen int) isa.Instr {
	ops := isa.Ops()
	for {
		op := ops[r.Intn(len(ops))]
		in := isa.Instr{Op: op}
		reg := func() isa.Reg { return isa.Reg(r.Intn(isa.NumRegs)) }
		imm := func() int64 { return int64(r.Intn(2001) - 1000) }
		switch op.Format() {
		case isa.FormatNone:
			if op == isa.OpHalt {
				continue // emitted explicitly at the end
			}
		case isa.FormatR3:
			in.Rd, in.Rs, in.Rt = reg(), reg(), reg()
		case isa.FormatR2I:
			in.Rd, in.Rs, in.Imm = reg(), reg(), imm()
		case isa.FormatR2:
			in.Rd, in.Rs = reg(), reg()
		case isa.FormatRI:
			in.Rd, in.Imm = reg(), imm()
		case isa.FormatMem:
			in.Rt, in.Rs, in.Imm = reg(), reg(), imm()
		case isa.FormatBranch:
			in.Rs, in.Rt, in.Target = reg(), reg(), r.Intn(progLen)
		case isa.FormatBranchI:
			in.Rs, in.Imm, in.Target = reg(), imm(), r.Intn(progLen)
		case isa.FormatJump:
			in.Target = r.Intn(progLen)
		case isa.FormatJumpR:
			in.Rs = reg()
		case isa.FormatR1:
			in.Rd = reg()
		case isa.FormatStr:
			// Random printable string with the characters the renderer must
			// escape.
			n := r.Intn(8)
			s := make([]byte, 0, n)
			alphabet := `abc "\-;/()#$*123 	`
			for i := 0; i < n; i++ {
				s = append(s, alphabet[r.Intn(len(alphabet))])
			}
			in.Str = string(s)
		case isa.FormatCheck:
			in.Imm = int64(r.Intn(10))
		}
		return in
	}
}

// TestFuzzRenderParseRoundTrip: for random syntactically valid programs,
// Program.String must re-parse to an instruction-identical program.
func TestFuzzRenderParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for iter := 0; iter < 400; iter++ {
		n := 3 + r.Intn(30)
		instrs := make([]isa.Instr, 0, n+1)
		for i := 0; i < n; i++ {
			instrs = append(instrs, randomInstr(r, n+1))
		}
		instrs = append(instrs, isa.Instr{Op: isa.OpHalt})
		labels := map[string]int{}
		for k := r.Intn(4); k > 0; k-- {
			labels["L"+strconv.Itoa(r.Intn(100))] = r.Intn(n + 1)
		}
		prog, err := isa.NewProgram("fuzz", instrs, labels)
		if err != nil {
			t.Fatalf("iter %d: build: %v", iter, err)
		}

		rendered := prog.String()
		u, err := asm.Parse("fuzz-rt", rendered)
		if err != nil {
			t.Fatalf("iter %d: re-parse: %v\n%s", iter, err, rendered)
		}
		if u.Program.Len() != prog.Len() {
			t.Fatalf("iter %d: length %d vs %d\n%s", iter, u.Program.Len(), prog.Len(), rendered)
		}
		for i := 0; i < prog.Len(); i++ {
			a, b := prog.At(i), u.Program.At(i)
			a.Line, b.Line = 0, 0
			a.Label, b.Label = "", "" // spelling may differ; targets must not
			if a != b {
				t.Fatalf("iter %d @%d: %v vs %v\n%s", iter, i, prog.At(i), u.Program.At(i), rendered)
			}
		}
	}
}
