// Package asm implements the assembler for SymPLFIED's generic assembly
// language: it parses textual programs (the notation used throughout the
// paper, e.g. Figures 2 and 3) into isa.Program values, together with any
// detector specifications.
//
// Accepted syntax, one statement per line:
//
//	label:                          -- a label (may share a line with code)
//	ori $2 $0 #1                    -- immediates written #N or N
//	beq $5 0 exit                   -- beq/bne with a constant auto-select beqi/bnei
//	ld $3 4($29)                    -- memory operands off($base), or "ld $3 $29 4"
//	prints "Factorial = "           -- string literals in double quotes
//	check ($4 < $3)                 -- inline detector sugar (Figure 3 style)
//	check #2                        -- invoke detector by ID
//	det(2, $2, >=, $6 * $1)         -- detector specification (not an instruction)
//	halt
//
// Comments run from "--", ";" or "//" to end of line. Operands may be
// separated by spaces and/or commas.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"symplfied/internal/detector"
	"symplfied/internal/isa"
)

// Unit is the result of assembling one source text.
type Unit struct {
	Program   *isa.Program
	Detectors *detector.Table
}

// ParseError reports a syntax error with its source line.
type ParseError struct {
	Name string
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.Name, e.Line, e.Msg)
}

var _ error = (*ParseError)(nil)

// Parse assembles src into a program named name.
func Parse(name, src string) (*Unit, error) {
	p := &parser{
		name:   name,
		labels: make(map[string]int),
		dets:   detector.EmptyTable(),
	}
	for i, line := range strings.Split(src, "\n") {
		if err := p.parseLine(i+1, line); err != nil {
			return nil, err
		}
	}
	prog, err := isa.NewProgram(name, p.instrs, p.labels)
	if err != nil {
		return nil, err
	}
	return &Unit{Program: prog, Detectors: p.dets}, nil
}

// MustParse is Parse for statically known-good sources; it panics on any
// parse or program-construction error. Intended only for embedded sources
// (internal/apps, tests) whose validity is enforced by tests. Code parsing
// external files must call Parse and handle the error; campaign
// infrastructure deliberately does not recover from this panic.
func MustParse(name, src string) *Unit {
	u, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return u
}

type parser struct {
	name   string
	instrs []isa.Instr
	labels map[string]int
	dets   *detector.Table
}

func (p *parser) errf(line int, format string, args ...any) error {
	return &ParseError{Name: p.name, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch {
		case inStr && line[i] == '\\':
			i++ // skip the escaped character (notably \")
		case line[i] == '"':
			inStr = !inStr
		case inStr:
		case line[i] == ';':
			return line[:i]
		case line[i] == '-' && i+1 < len(line) && line[i+1] == '-':
			return line[:i]
		case line[i] == '/' && i+1 < len(line) && line[i+1] == '/':
			return line[:i]
		}
	}
	return line
}

func (p *parser) parseLine(lineNo int, raw string) error {
	line := strings.TrimSpace(stripComment(raw))
	if line == "" {
		return nil
	}

	// Detector specification lines.
	if strings.HasPrefix(line, "det(") || strings.HasPrefix(line, "det (") {
		d, err := detector.Parse(line)
		if err != nil {
			return p.errf(lineNo, "%v", err)
		}
		if err := p.dets.Add(d); err != nil {
			return p.errf(lineNo, "%v", err)
		}
		return nil
	}

	// Leading labels (possibly several, possibly followed by code).
	for {
		idx := labelSplit(line)
		if idx < 0 {
			break
		}
		label := strings.TrimSpace(line[:idx])
		if !isIdent(label) {
			return p.errf(lineNo, "bad label %q", label)
		}
		if _, dup := p.labels[label]; dup {
			return p.errf(lineNo, "duplicate label %q", label)
		}
		p.labels[label] = len(p.instrs)
		line = strings.TrimSpace(line[idx+1:])
		if line == "" {
			return nil
		}
	}

	in, err := p.parseInstr(lineNo, line)
	if err != nil {
		return err
	}
	in.Line = lineNo
	p.instrs = append(p.instrs, in)
	return nil
}

// labelSplit returns the index of a label-terminating ':' at the start of the
// line, or -1. A ':' inside a string or past the mnemonic is not a label.
func labelSplit(line string) int {
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == ':':
			return i
		case c == ' ' || c == '\t' || c == '"' || c == '(' || c == '#' || c == '$':
			return -1
		}
	}
	return -1
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (p *parser) parseInstr(lineNo int, line string) (isa.Instr, error) {
	mnemonic, rest := splitWord(line)

	// Inline check sugar: check (<loc> <cmp> <expr>).
	if mnemonic == "check" {
		r := strings.TrimSpace(rest)
		if strings.HasPrefix(r, "(") {
			id := p.dets.NextID()
			d, err := detector.ParseInlineCheck(id, strings.TrimSuffix(strings.TrimPrefix(r, "("), ")"))
			if err != nil {
				return isa.Instr{}, p.errf(lineNo, "%v", err)
			}
			if err := p.dets.Add(d); err != nil {
				return isa.Instr{}, p.errf(lineNo, "%v", err)
			}
			return isa.Instr{Op: isa.OpCheck, Imm: id}, nil
		}
	}

	op := isa.OpByName(mnemonic)
	if op == isa.OpInvalid {
		return isa.Instr{}, p.errf(lineNo, "unknown mnemonic %q", mnemonic)
	}
	ops, err := tokenizeOperands(rest)
	if err != nil {
		return isa.Instr{}, p.errf(lineNo, "%v", err)
	}
	in, err := p.buildInstr(op, ops)
	if err != nil {
		return isa.Instr{}, p.errf(lineNo, "%s: %v", mnemonic, err)
	}
	return in, nil
}

func splitWord(s string) (word, rest string) {
	s = strings.TrimSpace(s)
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			return s[:i], s[i+1:]
		}
	}
	return s, ""
}

// operand is one token: a register, immediate, label, string, or memory ref.
type operand struct {
	kind    opKind
	reg     isa.Reg
	imm     int64
	memBase isa.Reg
	str     string
	label   string
}

type opKind int

const (
	opReg opKind = iota + 1
	opImm
	opMem // imm(reg)
	opStr
	opLabel
)

func tokenizeOperands(s string) ([]operand, error) {
	var out []operand
	i := 0
	n := len(s)
	for i < n {
		switch c := s[i]; {
		case c == ' ' || c == '\t' || c == ',':
			i++
		case c == '"':
			j := i + 1
			var b strings.Builder
			for j < n && s[j] != '"' {
				if s[j] == '\\' && j+1 < n {
					j++
					switch s[j] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					default:
						b.WriteByte(s[j])
					}
				} else {
					b.WriteByte(s[j])
				}
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("unterminated string literal")
			}
			out = append(out, operand{kind: opStr, str: b.String()})
			i = j + 1
		case c == '$':
			j := i + 1
			for j < n && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			v, err := strconv.ParseUint(s[i+1:j], 10, 8)
			if err != nil || v >= isa.NumRegs {
				return nil, fmt.Errorf("bad register %q", s[i:j])
			}
			out = append(out, operand{kind: opReg, reg: isa.Reg(v)})
			i = j
		case c == '#' || c == '-' || (c >= '0' && c <= '9'):
			j := i
			if s[j] == '#' {
				j++
			}
			start := j
			if j < n && s[j] == '-' {
				j++
			}
			for j < n && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			if j == start || (j == start+1 && s[start] == '-') {
				return nil, fmt.Errorf("bad immediate at %q", s[i:])
			}
			v, err := strconv.ParseInt(s[start:j], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad immediate %q: %v", s[start:j], err)
			}
			// Memory operand imm($reg)?
			if j < n && s[j] == '(' {
				k := j + 1
				if k >= n || s[k] != '$' {
					return nil, fmt.Errorf("bad memory operand at %q", s[i:])
				}
				k++
				rs := k
				for k < n && s[k] >= '0' && s[k] <= '9' {
					k++
				}
				rv, err := strconv.ParseUint(s[rs:k], 10, 8)
				if err != nil || rv >= isa.NumRegs {
					return nil, fmt.Errorf("bad base register in %q", s[i:])
				}
				if k >= n || s[k] != ')' {
					return nil, fmt.Errorf("missing ')' in memory operand %q", s[i:])
				}
				out = append(out, operand{kind: opMem, imm: v, memBase: isa.Reg(rv)})
				i = k + 1
			} else {
				out = append(out, operand{kind: opImm, imm: v})
				i = j
			}
		default:
			j := i
			for j < n && s[j] != ' ' && s[j] != '\t' && s[j] != ',' {
				j++
			}
			tok := s[i:j]
			if strings.HasPrefix(tok, "@") {
				v, err := strconv.Atoi(tok[1:])
				if err != nil {
					return nil, fmt.Errorf("bad absolute target %q", tok)
				}
				out = append(out, operand{kind: opLabel, label: "", imm: int64(v)})
				i = j
				continue
			}
			if !isIdent(tok) {
				return nil, fmt.Errorf("bad token %q", tok)
			}
			out = append(out, operand{kind: opLabel, label: tok})
			i = j
		}
	}
	return out, nil
}

func (p *parser) buildInstr(op isa.Op, ops []operand) (isa.Instr, error) {
	in := isa.Instr{Op: op}
	want := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("want %d operands, got %d", n, len(ops))
		}
		return nil
	}
	reg := func(i int) (isa.Reg, error) {
		if ops[i].kind != opReg {
			return 0, fmt.Errorf("operand %d: want register", i+1)
		}
		return ops[i].reg, nil
	}
	imm := func(i int) (int64, error) {
		if ops[i].kind != opImm {
			return 0, fmt.Errorf("operand %d: want immediate", i+1)
		}
		return ops[i].imm, nil
	}
	lbl := func(i int) error {
		if ops[i].kind != opLabel {
			return fmt.Errorf("operand %d: want label", i+1)
		}
		in.Label = ops[i].label
		if in.Label == "" {
			in.Target = int(ops[i].imm)
		}
		return nil
	}

	switch op.Format() {
	case isa.FormatNone:
		return in, want(0)

	case isa.FormatR3:
		// Accept the immediate form spelled with the register mnemonic
		// (e.g. "setgt $5 $3 4"): auto-select the immediate opcode.
		if len(ops) == 3 && ops[2].kind == opImm {
			if immOp := immediateForm(op); immOp != isa.OpInvalid {
				in.Op = immOp
				var err error
				if in.Rd, err = reg(0); err != nil {
					return in, err
				}
				if in.Rs, err = reg(1); err != nil {
					return in, err
				}
				in.Imm = ops[2].imm
				return in, nil
			}
		}
		if err := want(3); err != nil {
			return in, err
		}
		var err error
		if in.Rd, err = reg(0); err != nil {
			return in, err
		}
		if in.Rs, err = reg(1); err != nil {
			return in, err
		}
		in.Rt, err = reg(2)
		return in, err

	case isa.FormatR2I:
		if err := want(3); err != nil {
			return in, err
		}
		var err error
		if in.Rd, err = reg(0); err != nil {
			return in, err
		}
		if in.Rs, err = reg(1); err != nil {
			return in, err
		}
		in.Imm, err = imm(2)
		return in, err

	case isa.FormatR2:
		if err := want(2); err != nil {
			return in, err
		}
		var err error
		if in.Rd, err = reg(0); err != nil {
			return in, err
		}
		in.Rs, err = reg(1)
		return in, err

	case isa.FormatRI:
		if err := want(2); err != nil {
			return in, err
		}
		var err error
		if in.Rd, err = reg(0); err != nil {
			return in, err
		}
		in.Imm, err = imm(1)
		return in, err

	case isa.FormatMem:
		// Two spellings: "ld $t off($b)" and "ld $t $b off".
		if len(ops) == 2 && ops[1].kind == opMem {
			var err error
			if in.Rt, err = reg(0); err != nil {
				return in, err
			}
			in.Rs = ops[1].memBase
			in.Imm = ops[1].imm
			return in, nil
		}
		if err := want(3); err != nil {
			return in, err
		}
		var err error
		if in.Rt, err = reg(0); err != nil {
			return in, err
		}
		if in.Rs, err = reg(1); err != nil {
			return in, err
		}
		in.Imm, err = imm(2)
		return in, err

	case isa.FormatBranch:
		if err := want(3); err != nil {
			return in, err
		}
		var err error
		if in.Rs, err = reg(0); err != nil {
			return in, err
		}
		// "beq $5 0 exit" (paper form): constant second operand selects the
		// immediate branch.
		if ops[1].kind == opImm {
			switch op {
			case isa.OpBeq:
				in.Op = isa.OpBeqi
			case isa.OpBne:
				in.Op = isa.OpBnei
			}
			in.Imm = ops[1].imm
		} else if in.Rt, err = reg(1); err != nil {
			return in, err
		}
		return in, lbl(2)

	case isa.FormatBranchI:
		if err := want(3); err != nil {
			return in, err
		}
		var err error
		if in.Rs, err = reg(0); err != nil {
			return in, err
		}
		if in.Imm, err = imm(1); err != nil {
			return in, err
		}
		return in, lbl(2)

	case isa.FormatJump:
		if err := want(1); err != nil {
			return in, err
		}
		return in, lbl(0)

	case isa.FormatJumpR:
		if err := want(1); err != nil {
			return in, err
		}
		var err error
		in.Rs, err = reg(0)
		return in, err

	case isa.FormatR1:
		if err := want(1); err != nil {
			return in, err
		}
		var err error
		in.Rd, err = reg(0)
		return in, err

	case isa.FormatStr:
		if err := want(1); err != nil {
			return in, err
		}
		if ops[0].kind != opStr {
			return in, fmt.Errorf("want string literal")
		}
		in.Str = ops[0].str
		return in, nil

	case isa.FormatCheck:
		if err := want(1); err != nil {
			return in, err
		}
		var err error
		in.Imm, err = imm(0)
		return in, err
	}
	return in, fmt.Errorf("unhandled format for %s", op)
}

// immediateForm returns the immediate twin of a register-form opcode.
func immediateForm(op isa.Op) isa.Op {
	switch op {
	case isa.OpAdd:
		return isa.OpAddi
	case isa.OpSub:
		return isa.OpSubi
	case isa.OpMult:
		return isa.OpMulti
	case isa.OpDiv:
		return isa.OpDivi
	case isa.OpMod:
		return isa.OpModi
	case isa.OpAnd:
		return isa.OpAndi
	case isa.OpOr:
		return isa.OpOri
	case isa.OpXor:
		return isa.OpXori
	case isa.OpSll:
		return isa.OpSlli
	case isa.OpSrl:
		return isa.OpSrli
	case isa.OpSra:
		return isa.OpSrai
	case isa.OpSeteq:
		return isa.OpSeteqi
	case isa.OpSetne:
		return isa.OpSetnei
	case isa.OpSetgt:
		return isa.OpSetgti
	case isa.OpSetlt:
		return isa.OpSetlti
	case isa.OpSetge:
		return isa.OpSetgei
	case isa.OpSetle:
		return isa.OpSetlei
	}
	return isa.OpInvalid
}
