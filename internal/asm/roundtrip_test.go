package asm_test

import (
	"testing"

	"symplfied/internal/apps/factorial"
	"symplfied/internal/apps/replace"
	"symplfied/internal/apps/tcas"
	"symplfied/internal/asm"
	"symplfied/internal/isa"
	"symplfied/internal/machine"
)

// TestAppRoundTrips disassembles each benchmark application and re-assembles
// the text, requiring instruction-for-instruction equality — the
// assembler/disassembler contract over the full production programs.
func TestAppRoundTrips(t *testing.T) {
	apps := []struct {
		name string
		prog *isa.Program
	}{
		{"factorial", factorial.Plain()},
		{"tcas", tcas.Program()},
		{"replace", replace.Program()},
	}
	for _, app := range apps {
		rendered := app.prog.String()
		u, err := asm.Parse(app.name+"-rt", rendered)
		if err != nil {
			t.Errorf("%s: re-parse failed: %v", app.name, err)
			continue
		}
		if u.Program.Len() != app.prog.Len() {
			t.Errorf("%s: length %d vs %d", app.name, u.Program.Len(), app.prog.Len())
			continue
		}
		for i := 0; i < app.prog.Len(); i++ {
			a, b := app.prog.At(i), u.Program.At(i)
			a.Line, b.Line = 0, 0
			// Branch labels may be spelled differently but must resolve to
			// the same target.
			if a.IsBranch() {
				if a.Target != b.Target || a.Op != b.Op || a.Rs != b.Rs || a.Rt != b.Rt || a.Imm != b.Imm {
					t.Errorf("%s @%d: %v vs %v", app.name, i, a, b)
				}
				continue
			}
			if a != b {
				t.Errorf("%s @%d: %v vs %v", app.name, i, a, b)
			}
		}
	}
}

// TestAppRoundTripSemantics runs the original and the re-assembled tcas and
// replace programs on their canonical inputs and requires identical output
// and instruction counts.
func TestAppRoundTripSemantics(t *testing.T) {
	check := func(name string, prog *isa.Program, input []int64) {
		t.Helper()
		u, err := asm.Parse(name+"-rt", prog.String())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r1 := machine.New(prog, input, machine.Options{Watchdog: 2_000_000}).Run()
		r2 := machine.New(u.Program, input, machine.Options{Watchdog: 2_000_000}).Run()
		if r1.Status != r2.Status || r1.Steps != r2.Steps ||
			machine.RenderOutput(r1.Output) != machine.RenderOutput(r2.Output) {
			t.Errorf("%s: semantics changed by round trip: %v/%d/%q vs %v/%d/%q",
				name, r1.Status, r1.Steps, machine.RenderOutput(r1.Output),
				r2.Status, r2.Steps, machine.RenderOutput(r2.Output))
		}
	}
	check("tcas", tcas.Program(), tcas.UpwardInput().Slice())
	check("replace", replace.Program(), replace.Input("[a-c]x*", "<&>", "axx b cx"))
	check("factorial", factorial.Plain(), []int64{6})
}
