package asm

import (
	"errors"
	"strings"
	"testing"

	"symplfied/internal/isa"
)

func parseOne(t *testing.T, line string) isa.Instr {
	t.Helper()
	u, err := Parse("t", line+"\nx:\thalt\n")
	if err != nil {
		t.Fatalf("Parse(%q): %v", line, err)
	}
	return u.Program.At(0)
}

func TestOperandSyntaxVariants(t *testing.T) {
	cases := []struct {
		line string
		want isa.Instr
	}{
		// Immediates with and without '#', with commas and without.
		{"ori $2 $0 #1", isa.Instr{Op: isa.OpOri, Rd: 2, Imm: 1}},
		{"ori $2, $0, 1", isa.Instr{Op: isa.OpOri, Rd: 2, Imm: 1}},
		{"addi $1 $2 #-5", isa.Instr{Op: isa.OpAddi, Rd: 1, Rs: 2, Imm: -5}},
		{"subi $3 $3 1", isa.Instr{Op: isa.OpSubi, Rd: 3, Rs: 3, Imm: 1}},
		// Register-mnemonic with immediate third operand auto-selects the
		// immediate twin (paper style "setgt $9 $8 600").
		{"setgt $9 $8 600", isa.Instr{Op: isa.OpSetgti, Rd: 9, Rs: 8, Imm: 600}},
		{"add $1 $2 3", isa.Instr{Op: isa.OpAddi, Rd: 1, Rs: 2, Imm: 3}},
		{"seteq $10 $8 1", isa.Instr{Op: isa.OpSeteqi, Rd: 10, Rs: 8, Imm: 1}},
		// Memory operands in both spellings, including negative offsets.
		{"ld $3 4($29)", isa.Instr{Op: isa.OpLd, Rt: 3, Rs: 29, Imm: 4}},
		{"ld $3 $29 4", isa.Instr{Op: isa.OpLd, Rt: 3, Rs: 29, Imm: 4}},
		{"ld $13 -1($9)", isa.Instr{Op: isa.OpLd, Rt: 13, Rs: 9, Imm: -1}},
		{"st $6 100($0)", isa.Instr{Op: isa.OpSt, Rt: 6, Rs: 0, Imm: 100}},
		// Paper branch form "beq rs v l" auto-selects beqi.
		{"beq $5 0 x", isa.Instr{Op: isa.OpBeqi, Rs: 5, Imm: 0, Label: "x", Target: 1}},
		{"bne $5 $6 x", isa.Instr{Op: isa.OpBne, Rs: 5, Rt: 6, Label: "x", Target: 1}},
		// String escapes.
		{`prints "a\nb"`, isa.Instr{Op: isa.OpPrints, Str: "a\nb"}},
		// Absolute branch target.
		{"jmp @1", isa.Instr{Op: isa.OpJmp, Target: 1}},
		// Check by ID.
		{"check #3", isa.Instr{Op: isa.OpCheck, Imm: 3}},
	}
	for _, c := range cases {
		got := parseOne(t, "\t"+c.line)
		got.Line = 0
		if got.Label == "x" {
			// keep label for comparison
		}
		if got != c.want {
			t.Errorf("parse %q = %+v, want %+v", c.line, got, c.want)
		}
	}
}

func TestLabelsShareLineWithCode(t *testing.T) {
	u, err := Parse("t", "loop: setgt $5 $3 $4\nexit:\n\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	if u.Program.Labels["loop"] != 0 || u.Program.Labels["exit"] != 1 {
		t.Errorf("labels %v", u.Program.Labels)
	}
}

func TestCommentStyles(t *testing.T) {
	src := `
	ori $2 $0 #1   -- dash comment
	ori $3 $0 #2   ; semicolon comment
	ori $4 $0 #3   // slash comment
	prints "a--b;c//d" -- comment markers inside strings survive
	halt
`
	u, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if u.Program.Len() != 5 {
		t.Fatalf("Len = %d", u.Program.Len())
	}
	if got := u.Program.At(3).Str; got != "a--b;c//d" {
		t.Errorf("string literal %q", got)
	}
}

func TestInlineCheckSugar(t *testing.T) {
	src := `
	check ($4 < $3)
	check ($2 >= $6 * $1)
	halt
`
	u, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if u.Detectors.Len() != 2 {
		t.Fatalf("detectors %d", u.Detectors.Len())
	}
	d1, _ := u.Detectors.Lookup(1)
	if d1.Target != isa.RegLoc(4) || d1.Cmp != isa.CmpLt {
		t.Errorf("detector 1 = %v", d1)
	}
	d2, _ := u.Detectors.Lookup(2)
	if d2.Target != isa.RegLoc(2) || d2.Cmp != isa.CmpGe {
		t.Errorf("detector 2 = %v", d2)
	}
	if u.Program.At(0).Op != isa.OpCheck || u.Program.At(0).Imm != 1 {
		t.Errorf("check instr %v", u.Program.At(0))
	}
}

func TestDetectorSpecLines(t *testing.T) {
	src := `
	det(7, $5, ==, $3 + *(1000))
	check #7
	halt
`
	u, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := u.Detectors.Lookup(7)
	if !ok || d.Target != isa.RegLoc(5) || d.Cmp != isa.CmpEq {
		t.Fatalf("detector %v ok=%v", d, ok)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantMsg string
	}{
		{"\tbogus $1\n", "unknown mnemonic"},
		{"\tadd $1 $2\n", "want 3 operands"},
		{"\tadd $1 $2 $40\n", "bad register"},
		{"\tld $1 4($40)\n", "bad base register"},
		{"\tprints noquote\n", "want string literal"},
		{"l:\nl:\n\thalt\n", "duplicate label"},
		{"\tjmp nowhere\n", "undefined label"},
		{"\tprints \"open\n", "unterminated string"},
		{"\tbeq $1 $2\n", "want 3 operands"},
		{"\tjmp @99\n", "invalid target"},
		{"\tdet(1, $1, ==\n", "detector"},
	}
	for _, c := range cases {
		_, err := Parse("t", c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.wantMsg)
			continue
		}
		if !strings.Contains(err.Error(), c.wantMsg) {
			t.Errorf("Parse(%q) error %q, want containing %q", c.src, err, c.wantMsg)
		}
	}
}

func TestParseErrorCarriesLine(t *testing.T) {
	_, err := Parse("file.sym", "\tnop\n\tbogus\n")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T, want *ParseError", err)
	}
	if pe.Line != 2 || pe.Name != "file.sym" {
		t.Errorf("ParseError = %+v", pe)
	}
}

// TestRoundTrip checks Program.String output re-parses to an identical
// program (the disassembler/assembler contract).
func TestRoundTrip(t *testing.T) {
	src := `
main:	ori $2 $0 #1
	read $1
loop:	setgt $5 $3 $4
	beq $5 0 exit
	mult $2 $2 $3
	ld $7 4($29)
	st $7 -2($29)
	jal fn
	jmp loop
fn:	jr $31
exit:	prints "done"
	print $2
	halt
`
	u1, err := Parse("rt", src)
	if err != nil {
		t.Fatal(err)
	}
	rendered := u1.Program.String()
	u2, err := Parse("rt2", rendered)
	if err != nil {
		t.Fatalf("re-parse of rendered program failed: %v\n%s", err, rendered)
	}
	if u2.Program.String() != rendered {
		t.Errorf("round trip not stable:\nfirst:\n%s\nsecond:\n%s", rendered, u2.Program.String())
	}
	if u1.Program.Len() != u2.Program.Len() {
		t.Fatalf("lengths differ: %d vs %d", u1.Program.Len(), u2.Program.Len())
	}
	for i := 0; i < u1.Program.Len(); i++ {
		a, b := u1.Program.At(i), u2.Program.At(i)
		a.Line, b.Line = 0, 0
		if a != b {
			t.Errorf("instr %d differs: %v vs %v", i, a, b)
		}
	}
}

// TestMustParsePanicContract pins the documented contract of MustParse: a
// valid embedded source parses without panicking, and a malformed one panics
// with the Parse error. Campaign code never recovers this panic — it is an
// assertion on embedded sources, not a runtime error path.
func TestMustParsePanicContract(t *testing.T) {
	if u := MustParse("good", "li $1 #1\nhalt\n"); u == nil || u.Program.Len() != 2 {
		t.Fatalf("MustParse of a valid source: %v", u)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustParse of a malformed source did not panic")
		}
		if _, ok := r.(error); !ok {
			t.Errorf("MustParse panicked with %T, want the Parse error", r)
		}
	}()
	MustParse("bad", "frobnicate $1 $2\n")
}
