package replace

import (
	"fmt"

	"symplfied/internal/asm"
	"symplfied/internal/isa"
)

// Memory layout of the assembly program.
const (
	ArgPatBase = 200  // raw pattern argument (terminated)
	ArgSubBase = 400  // raw substitution argument (terminated)
	LineBase   = 600  // input line (terminated)
	PatBase    = 800  // encoded pattern
	SubBase    = 1000 // encoded substitution
	StackTop   = 10000
)

// Input encodes a single-line run as the program's input stream: pattern
// codes, terminator, substitution codes, terminator, line count (1), line
// codes (with the Software Tools trailing newline), terminator.
func Input(pattern, substitution, line string) []int64 {
	return InputLines(pattern, substitution, line)
}

// InputLines encodes a multi-line run: the driver's change() loop processes
// each line in turn, exactly like replace.c's main loop over getline.
func InputLines(pattern, substitution string, lines ...string) []int64 {
	var in []int64
	in = append(in, Str(pattern)...)
	in = append(in, Str(substitution)...)
	in = append(in, int64(len(lines)))
	for _, l := range lines {
		in = append(in, Line(l)...)
	}
	return in
}

// Source is the assembly implementation. Calling convention: arguments in
// $4..$6, result in $2, stack pointer $29, return address $31; non-leaf
// functions save $31 in their frame. amatch recurses for closure
// backtracking, exactly like replace.c.
const Source = `
-- =========================== driver ==============================
main:	li $29 10000
	li $16 200              -- read pattern argument
RP_loop:
	read $8
	st $8 0($16)
	addi $16 $16 1
	bne $8 0 RP_loop
	li $16 400              -- read substitution argument
RS_loop:
	read $8
	st $8 0($16)
	addi $16 $16 1
	bne $8 0 RS_loop
	jal makepat
	bne $2 0 MAIN_pat_ok
	li $8 -2                -- illegal pattern marker; proceed regardless
	print $8
MAIN_pat_ok:
	jal makesub
	bne $2 0 MAIN_sub_ok
	li $8 -3                -- illegal substitution marker; proceed regardless
	print $8
MAIN_sub_ok:
	read $17                -- line count: the change() loop over getline
CH_loop:
	setle $8 $17 0
	bne $8 0 CH_done
	li $16 600              -- getline: read one line into the buffer
RL_loop:
	read $8
	st $8 0($16)
	addi $16 $16 1
	bne $8 0 RL_loop
	jal subline
	subi $17 $17 1
	jmp CH_loop
CH_done:
	halt

-- ======================== addstr(c, dest, &j) =====================
-- $4 = c, $5 = dest base, $6 = &j. Appends when j < MAXSTR(100).
addstr:
	ld $8 0($6)
	setlt $9 $8 100
	bne $9 0 AS_ok
	li $2 0
	jr $31
AS_ok:
	add $10 $5 $8
	st $4 0($10)
	addi $8 $8 1
	st $8 0($6)
	li $2 1
	jr $31

-- ========================= esc(base, &i) ==========================
-- $4 = string base, $5 = &i; returns the (possibly escaped) character.
esc:
	ld $8 0($5)
	add $9 $4 $8
	ld $10 0($9)
	seteq $11 $10 64        -- ESCAPE '@'
	beq $11 0 ESC_lit
	ld $12 1($9)
	bne $12 0 ESC_adv
	li $2 64                -- trailing '@' stands for itself
	jr $31
ESC_adv:
	addi $8 $8 1
	st $8 0($5)
	add $9 $4 $8
	ld $10 0($9)
	seteq $11 $10 110       -- 'n'
	beq $11 0 ESC_t
	li $2 10
	jr $31
ESC_t:
	seteq $11 $10 116       -- 't'
	beq $11 0 ESC_lit
	li $2 9
	jr $31
ESC_lit:
	mov $2 $10
	jr $31

-- ========================= isalnum(c) =============================
isalnum:
	setge $8 $4 97
	setle $9 $4 122
	and $10 $8 $9
	bne $10 0 IA_yes
	setge $8 $4 65
	setle $9 $4 90
	and $10 $8 $9
	bne $10 0 IA_yes
	setge $8 $4 48
	setle $9 $4 57
	and $10 $8 $9
	bne $10 0 IA_yes
	li $2 0
	jr $31
IA_yes:
	li $2 1
	jr $31

-- =================== dodash(delim, &i, &j) ========================
-- $4 = delimiter, $5 = &i (into pattern arg at 200), $6 = &j (into pat
-- at 800). Frame: 0 ra, 1 delim, 2 &i, 3 &j, 4 k/prev, 5 next.
dodash:
	subi $29 $29 6
	st $31 0($29)
	st $4 1($29)
	st $5 2($29)
	st $6 3($29)
DD_loop:
	ld $5 2($29)
	ld $8 0($5)
	addi $9 $8 200
	ld $10 0($9)            -- src[i]
	ld $4 1($29)
	beq $10 $4 DD_done      -- src[i] == delim
	beq $10 0 DD_done       -- ENDSTR
	seteq $11 $10 64        -- ESCAPE
	beq $11 0 DD_notesc
	li $4 200
	ld $5 2($29)
	jal esc
	mov $4 $2
	li $5 800
	ld $6 3($29)
	jal addstr
	jmp DD_next
DD_notesc:
	setne $11 $10 45        -- != DASH
	beq $11 0 DD_dash
	mov $4 $10
	li $5 800
	ld $6 3($29)
	jal addstr
	jmp DD_next
DD_dash:
	ld $6 3($29)
	ld $11 0($6)            -- j
	setle $12 $11 1
	bne $12 0 DD_adddash
	ld $5 2($29)
	ld $8 0($5)
	addi $9 $8 200
	ld $12 1($9)            -- src[i+1]
	beq $12 0 DD_adddash
	ld $13 -1($9)           -- src[i-1]
	st $13 4($29)
	st $12 5($29)
	mov $4 $13
	jal isalnum
	beq $2 0 DD_adddash
	ld $4 5($29)
	jal isalnum
	beq $2 0 DD_adddash
	ld $13 4($29)
	ld $12 5($29)
	setle $11 $13 $12       -- prev <= next
	beq $11 0 DD_adddash
	ld $13 4($29)           -- k = prev + 1
	addi $13 $13 1
	st $13 4($29)
DD_range:
	ld $13 4($29)
	ld $12 5($29)
	setgt $11 $13 $12
	bne $11 0 DD_rangedone
	mov $4 $13
	li $5 800
	ld $6 3($29)
	jal addstr
	ld $13 4($29)
	addi $13 $13 1
	st $13 4($29)
	jmp DD_range
DD_rangedone:
	ld $5 2($29)            -- extra advance past range end
	ld $8 0($5)
	addi $8 $8 1
	st $8 0($5)
	jmp DD_next
DD_adddash:
	li $4 45
	li $5 800
	ld $6 3($29)
	jal addstr
DD_next:
	ld $5 2($29)
	ld $8 0($5)
	addi $8 $8 1
	st $8 0($5)
	jmp DD_loop
DD_done:
	ld $31 0($29)
	addi $29 $29 6
	jr $31

-- ====================== getccl(&i, &j) ============================
-- $4 = &i, $5 = &j. Frame: 0 ra, 1 &i, 2 &j, 3 jstart.
getccl:
	subi $29 $29 4
	st $31 0($29)
	st $4 1($29)
	st $5 2($29)
	ld $8 0($4)             -- skip over [
	addi $8 $8 1
	st $8 0($4)
	addi $9 $8 200
	ld $10 0($9)
	seteq $11 $10 94        -- NEGATE '^'
	beq $11 0 GC_ccl
	li $4 33                -- NCCL '!'
	li $5 800
	ld $6 2($29)
	jal addstr
	ld $4 1($29)
	ld $8 0($4)
	addi $8 $8 1
	st $8 0($4)
	jmp GC_after
GC_ccl:
	li $4 91                -- CCL '['
	li $5 800
	ld $6 2($29)
	jal addstr
GC_after:
	ld $6 2($29)
	ld $8 0($6)
	st $8 3($29)            -- jstart = j
	li $4 0                 -- count placeholder
	li $5 800
	ld $6 2($29)
	jal addstr
	li $4 93                -- dodash(CCLEND, &i, &j)
	ld $5 1($29)
	ld $6 2($29)
	jal dodash
	ld $6 2($29)
	ld $8 0($6)
	ld $9 3($29)
	sub $10 $8 $9
	subi $10 $10 1
	addi $11 $9 800
	st $10 0($11)           -- pat[jstart] = j - jstart - 1
	ld $4 1($29)
	ld $8 0($4)
	addi $9 $8 200
	ld $10 0($9)
	seteq $2 $10 93         -- arg[i] == CCLEND
	ld $31 0($29)
	addi $29 $29 4
	jr $31

-- ===================== stclose(&j, lastj) =========================
-- $4 = &j, $5 = lastj. Shifts the closed element up and writes CLOSURE.
stclose:
	ld $8 0($4)
	subi $9 $8 1            -- jt = j - 1
SC_loop:
	setlt $10 $9 $5
	bne $10 0 SC_done
	addi $11 $9 800
	ld $12 0($11)
	st $12 1($11)           -- pat[jt+1] = pat[jt]
	subi $9 $9 1
	jmp SC_loop
SC_done:
	addi $8 $8 1
	st $8 0($4)             -- j += CLOSIZE
	addi $11 $5 800
	li $12 42               -- CLOSURE '*'
	st $12 0($11)
	jr $31

-- ========================= makepat() ==============================
-- Pattern arg at 200, encoded pat at 800, start 0, delim ENDSTR.
-- Frame: 0 ra, 1 i, 2 j, 3 lastj, 4 done, 5 lj, 6 junk.
makepat:
	subi $29 $29 7
	st $31 0($29)
	li $8 0
	st $8 1($29)
	st $8 2($29)
	st $8 3($29)
	st $8 4($29)
MP_loop:
	ld $8 4($29)
	bne $8 0 MP_end
	ld $8 1($29)
	addi $9 $8 200
	ld $10 0($9)            -- arg[i]
	beq $10 0 MP_end
	ld $11 2($29)           -- lj = j
	st $11 5($29)
	seteq $12 $10 63        -- ANY '?'
	bne $12 0 MP_any
	seteq $12 $10 37        -- BOL '%'
	beq $12 0 MP_noBOL
	ld $8 1($29)
	beq $8 0 MP_bol         -- only at i == start
MP_noBOL:
	seteq $12 $10 36        -- EOL '$'
	beq $12 0 MP_noEOL
	ld $12 1($9)
	beq $12 0 MP_eol        -- only right before the delimiter
MP_noEOL:
	seteq $12 $10 91        -- CCL '['
	bne $12 0 MP_ccl
	seteq $12 $10 42        -- CLOSURE '*'
	beq $12 0 MP_lit
	ld $8 1($29)
	setgt $12 $8 0          -- only after the first position
	bne $12 0 MP_clo
	jmp MP_lit
MP_any:
	li $4 63
	li $5 800
	addi $6 $29 2
	jal addstr
	jmp MP_cont
MP_bol:
	li $4 37
	li $5 800
	addi $6 $29 2
	jal addstr
	jmp MP_cont
MP_eol:
	li $4 36
	li $5 800
	addi $6 $29 2
	jal addstr
	jmp MP_cont
MP_ccl:
	addi $4 $29 1
	addi $5 $29 2
	jal getccl
	seteq $8 $2 0           -- done = (getccl failed)
	st $8 4($29)
	jmp MP_cont
MP_clo:
	ld $11 3($29)           -- lj = lastj
	st $11 5($29)
	addi $9 $11 800
	ld $10 0($9)            -- pat[lj]
	seteq $12 $10 37        -- in_set_2: BOL/EOL/CLOSURE cannot close
	bne $12 0 MP_cloBad
	seteq $12 $10 36
	bne $12 0 MP_cloBad
	seteq $12 $10 42
	bne $12 0 MP_cloBad
	addi $4 $29 2
	ld $5 3($29)
	jal stclose
	jmp MP_cont
MP_cloBad:
	li $8 1
	st $8 4($29)            -- done = true
	jmp MP_cont
MP_lit:
	li $4 99                -- LITCHAR 'c'
	li $5 800
	addi $6 $29 2
	jal addstr
	li $4 200
	addi $5 $29 1
	jal esc
	mov $4 $2
	li $5 800
	addi $6 $29 2
	jal addstr
MP_cont:
	ld $11 5($29)           -- lastj = lj
	st $11 3($29)
	ld $8 4($29)
	bne $8 0 MP_loop
	ld $8 1($29)
	addi $8 $8 1
	st $8 1($29)
	jmp MP_loop
MP_end:
	li $4 0                 -- terminate encoded pattern
	li $5 800
	addi $6 $29 2
	jal addstr
	st $2 6($29)
	ld $8 4($29)
	bne $8 0 MP_fail        -- done: error
	ld $8 1($29)
	addi $9 $8 200
	ld $10 0($9)
	bne $10 0 MP_fail       -- stopped before the delimiter
	ld $8 6($29)
	beq $8 0 MP_fail        -- pattern overflow
	ld $2 1($29)            -- result = i
	jmp MP_ret
MP_fail:
	li $2 0
MP_ret:
	ld $31 0($29)
	addi $29 $29 7
	jr $31

-- ========================= makesub() ==============================
-- Substitution arg at 400, encoded sub at 1000.
-- Frame: 0 ra, 1 i, 2 j.
makesub:
	subi $29 $29 3
	st $31 0($29)
	li $8 0
	st $8 1($29)
	st $8 2($29)
MS_loop:
	ld $8 1($29)
	addi $9 $8 400
	ld $10 0($9)
	beq $10 0 MS_end
	seteq $11 $10 38        -- '&' (ditto)
	beq $11 0 MS_esc
	li $4 -1                -- DITTO
	li $5 1000
	addi $6 $29 2
	jal addstr
	jmp MS_next
MS_esc:
	li $4 400
	addi $5 $29 1
	jal esc
	mov $4 $2
	li $5 1000
	addi $6 $29 2
	jal addstr
MS_next:
	ld $8 1($29)
	addi $8 $8 1
	st $8 1($29)
	jmp MS_loop
MS_end:
	li $4 0
	li $5 1000
	addi $6 $29 2
	jal addstr
	beq $2 0 MS_fail
	ld $2 1($29)            -- result = i (0 for empty: treated illegal,
	jmp MS_ret              --             as in replace.c's driver)
MS_fail:
	li $2 0
MS_ret:
	ld $31 0($29)
	addi $29 $29 3
	jr $31

-- ========================= patsize(n) =============================
patsize:
	addi $8 $4 800
	ld $9 0($8)
	seteq $10 $9 99         -- LITCHAR
	beq $10 0 PS_1
	li $2 2
	jr $31
PS_1:
	seteq $10 $9 37         -- BOL
	bne $10 0 PS_one
	seteq $10 $9 36         -- EOL
	bne $10 0 PS_one
	seteq $10 $9 63         -- ANY
	bne $10 0 PS_one
	seteq $10 $9 91         -- CCL
	bne $10 0 PS_ccl
	seteq $10 $9 33         -- NCCL
	bne $10 0 PS_ccl
	seteq $10 $9 42         -- CLOSURE
	bne $10 0 PS_one
	li $2 -1                -- Caseerror
	jr $31
PS_one:
	li $2 1
	jr $31
PS_ccl:
	ld $2 1($8)
	addi $2 $2 2
	jr $31

-- ====================== locate(c, offset) =========================
locate:
	addi $8 $5 800
	ld $9 0($8)             -- class size
	add $10 $5 $9           -- i = offset + pat[offset]
LOC_loop:
	setgt $11 $10 $5
	beq $11 0 LOC_no
	addi $12 $10 800
	ld $13 0($12)
	beq $13 $4 LOC_yes
	subi $10 $10 1
	jmp LOC_loop
LOC_yes:
	li $2 1
	jr $31
LOC_no:
	li $2 0
	jr $31

-- ====================== omatch(&i, j) =============================
-- $4 = &i (into line at 600), $5 = j (into pat at 800).
-- Frame: 0 ra, 1 &i, 2 j, 3 advance.
omatch:
	subi $29 $29 4
	st $31 0($29)
	st $4 1($29)
	st $5 2($29)
	ld $8 0($4)
	addi $9 $8 600
	ld $10 0($9)            -- lin[*i]
	bne $10 0 OM_go
	li $2 0
	jmp OM_ret
OM_go:
	li $11 -1
	st $11 3($29)           -- advance = -1
	addi $12 $5 800
	ld $13 0($12)           -- pat[j]
	seteq $14 $13 99        -- LITCHAR
	beq $14 0 OM_bol
	ld $14 1($12)
	bne $10 $14 OM_decide
	li $11 1
	st $11 3($29)
	jmp OM_decide
OM_bol:
	seteq $14 $13 37        -- BOL
	beq $14 0 OM_any
	bne $8 0 OM_decide
	li $11 0
	st $11 3($29)
	jmp OM_decide
OM_any:
	seteq $14 $13 63        -- ANY
	beq $14 0 OM_eol
	seteq $14 $10 10
	bne $14 0 OM_decide
	li $11 1
	st $11 3($29)
	jmp OM_decide
OM_eol:
	seteq $14 $13 36        -- EOL
	beq $14 0 OM_ccl
	setne $14 $10 10
	bne $14 0 OM_decide
	li $11 0
	st $11 3($29)
	jmp OM_decide
OM_ccl:
	seteq $14 $13 91        -- CCL
	beq $14 0 OM_nccl
	mov $4 $10
	ld $5 2($29)
	addi $5 $5 1
	jal locate
	beq $2 0 OM_decide
	li $11 1
	st $11 3($29)
	jmp OM_decide
OM_nccl:
	seteq $14 $13 33        -- NCCL
	beq $14 0 OM_decide     -- unknown code: no match (Caseerror analog)
	seteq $14 $10 10
	bne $14 0 OM_decide
	mov $4 $10
	ld $5 2($29)
	addi $5 $5 1
	jal locate
	bne $2 0 OM_decide
	li $11 1
	st $11 3($29)
OM_decide:
	ld $11 3($29)
	setge $12 $11 0
	beq $12 0 OM_false
	ld $4 1($29)
	ld $8 0($4)
	add $8 $8 $11           -- *i += advance
	st $8 0($4)
	li $2 1
	jmp OM_ret
OM_false:
	li $2 0
OM_ret:
	ld $31 0($29)
	addi $29 $29 4
	jr $31

-- ===================== amatch(offset, j) ==========================
-- $4 = offset, $5 = j; returns the index past the match or -1.
-- Recursive: closure backtracking calls amatch on the pattern rest.
-- Frame: 0 ra, 1 offset, 2 j, 3 i, 4 k.
amatch:
	subi $29 $29 5
	st $31 0($29)
	st $4 1($29)
	st $5 2($29)
AM_loop:
	ld $5 2($29)
	addi $8 $5 800
	ld $9 0($8)             -- pat[j]
	beq $9 0 AM_matched
	seteq $10 $9 42         -- CLOSURE
	beq $10 0 AM_simple
	ld $4 2($29)            -- j += patsize(pat, j)
	jal patsize
	ld $5 2($29)
	add $5 $5 $2
	st $5 2($29)
	ld $8 1($29)            -- i = offset
	st $8 3($29)
AM_eat:
	ld $8 3($29)            -- match as many as possible
	addi $9 $8 600
	ld $10 0($9)
	beq $10 0 AM_shrink
	addi $4 $29 3
	ld $5 2($29)
	jal omatch
	beq $2 0 AM_shrink
	jmp AM_eat
AM_shrink:
	li $8 -1                -- k = -1
	st $8 4($29)
AM_shrinkLoop:
	ld $8 3($29)
	ld $9 1($29)
	setlt $10 $8 $9         -- i < offset: closure failed everywhere
	bne $10 0 AM_closDone
	ld $4 2($29)
	jal patsize
	ld $5 2($29)
	add $5 $5 $2            -- j + patsize(pat, j): rest of pattern
	ld $4 3($29)
	jal amatch
	st $2 4($29)
	setge $10 $2 0
	bne $10 0 AM_closDone
	ld $8 3($29)            -- shrink closure by one
	subi $8 $8 1
	st $8 3($29)
	jmp AM_shrinkLoop
AM_closDone:
	ld $2 4($29)
	jmp AM_ret
AM_simple:
	addi $4 $29 1
	ld $5 2($29)
	jal omatch
	beq $2 0 AM_fail
	ld $4 2($29)
	jal patsize
	ld $5 2($29)
	add $5 $5 $2
	st $5 2($29)
	jmp AM_loop
AM_fail:
	li $2 -1
	jmp AM_ret
AM_matched:
	ld $2 1($29)
AM_ret:
	ld $31 0($29)
	addi $29 $29 5
	jr $31

-- ====================== putsub(s1, s2) ============================
-- Emits the substitution for lin[s1:s2]. Frame: 0 ra, 1 s1, 2 s2, 3 i, 4 jj.
putsub:
	subi $29 $29 5
	st $31 0($29)
	st $4 1($29)
	st $5 2($29)
	li $8 0
	st $8 3($29)
PU_loop:
	ld $8 3($29)
	addi $9 $8 1000
	ld $10 0($9)            -- sub[i]
	beq $10 0 PU_done
	seteq $11 $10 -1        -- DITTO
	beq $11 0 PU_char
	ld $12 1($29)           -- for jj = s1; jj < s2: print lin[jj]
	st $12 4($29)
PU_ditto:
	ld $12 4($29)
	ld $13 2($29)
	setge $14 $12 $13
	bne $14 0 PU_next
	addi $9 $12 600
	ld $10 0($9)
	print $10
	ld $12 4($29)
	addi $12 $12 1
	st $12 4($29)
	jmp PU_ditto
PU_char:
	print $10
PU_next:
	ld $8 3($29)
	addi $8 $8 1
	st $8 3($29)
	jmp PU_loop
PU_done:
	ld $31 0($29)
	addi $29 $29 5
	jr $31

-- ========================= subline() ==============================
-- Frame: 0 ra, 1 i, 2 lastm, 3 m.
subline:
	subi $29 $29 4
	st $31 0($29)
	li $8 0
	st $8 1($29)
	li $8 -1
	st $8 2($29)            -- lastm = -1
SL_loop:
	ld $8 1($29)
	addi $9 $8 600
	ld $10 0($9)
	beq $10 0 SL_done
	ld $4 1($29)            -- m = amatch(i, 0)
	li $5 0
	jal amatch
	st $2 3($29)
	setlt $8 $2 0
	bne $8 0 SL_nomatch
	ld $9 2($29)
	beq $9 $2 SL_nomatch    -- lastm == m: suppress duplicate
	ld $4 1($29)
	mov $5 $2
	jal putsub
	ld $8 3($29)
	st $8 2($29)            -- lastm = m
SL_nomatch:
	ld $8 3($29)
	seteq $9 $8 -1
	bne $9 0 SL_emit
	ld $10 1($29)
	beq $8 $10 SL_emit      -- empty match: emit the char and advance
	st $8 1($29)            -- i = m
	jmp SL_loop
SL_emit:
	ld $10 1($29)
	addi $9 $10 600
	ld $11 0($9)
	print $11
	addi $10 $10 1
	st $10 1($29)
	jmp SL_loop
SL_done:
	ld $31 0($29)
	addi $29 $29 4
	jr $31
`

// Program assembles the replace application.
func Program() *isa.Program {
	return asm.MustParse("replace", Source).Program
}

// DodashDelimCallPC returns the PC of the instruction that loads the
// delimiter argument for the dodash call inside getccl — the paper's
// Section 6.4 example corrupts this parameter ("an input parameter to the
// dodash function that holds the delimiter (']') for a character range").
// The returned PC is the li $4 93 immediately preceding "jal dodash".
func DodashDelimCallPC(prog *isa.Program) (int, error) {
	for pc := 0; pc < prog.Len(); pc++ {
		in := prog.At(pc)
		if in.Op != isa.OpLi || in.Rd != 4 || in.Imm != int64(CCLEND) {
			continue
		}
		// The delimiter is consumed inside dodash; corrupting $4 at the jal
		// (just before the call transfers control) is the paper's scenario.
		for k := pc + 1; k < prog.Len() && k <= pc+4; k++ {
			if j := prog.At(k); j.Op == isa.OpJal && j.Label == "dodash" {
				return k, nil
			}
		}
	}
	return 0, fmt.Errorf("replace: dodash delimiter call site not found")
}
