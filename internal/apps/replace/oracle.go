// Package replace reproduces the paper's scalability study subject
// (Section 6.4): the Siemens-suite "replace" program, "the largest of the
// Siemens benchmarks", which matches a pattern in an input line and replaces
// it with a substitution string. The pattern language is the Software Tools
// text-pattern language: literal characters, ? (any), % (beginning of line),
// $ (end of line), [...] character classes with ^ negation and - ranges,
// * closure, @ escapes, and & (ditto) in the substitution.
//
// The package provides a Go oracle transcribed from the Siemens replace.c
// (the functions of the paper's Table 3 — makepat, getccl, dodash, amatch,
// locate — plus their support routines) and an assembly implementation of
// the same pipeline with genuine recursion for closure backtracking.
//
// Strings are sequences of int64 character codes terminated by ENDSTR (0);
// lines conventionally end with a NEWLINE before the terminator.
package replace

// Pattern-language character codes (Software Tools / Siemens replace.c).
const (
	ENDSTR  = 0
	NEWLINE = 10
	TAB     = 9

	ESCAPE  = '@'
	CLOSURE = '*'
	BOL     = '%'
	EOL     = '$'
	ANY     = '?'
	CCL     = '['
	CCLEND  = ']'
	NEGATE  = '^'
	NCCL    = '!'
	LITCHAR = 'c'
	DITTO   = -1
	DASH    = '-'
	AMPER   = '&'

	MAXSTR  = 100
	CLOSIZE = 1
)

// Str converts a Go string to a terminated code sequence.
func Str(s string) []int64 {
	out := make([]int64, 0, len(s)+1)
	for _, r := range s {
		out = append(out, int64(r))
	}
	return append(out, ENDSTR)
}

// Line is Str plus a trailing newline before the terminator (the Software
// Tools line convention that $ matches against).
func Line(s string) []int64 {
	out := make([]int64, 0, len(s)+2)
	for _, r := range s {
		out = append(out, int64(r))
	}
	return append(out, NEWLINE, ENDSTR)
}

// Render converts a code sequence (no terminator) back to a Go string.
func Render(codes []int64) string {
	out := make([]rune, 0, len(codes))
	for _, c := range codes {
		out = append(out, rune(c))
	}
	return string(out)
}

func isalnum(c int64) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// addstr appends c to dest at *j if it fits in maxset (replace.c addstr).
func addstr(c int64, dest []int64, j *int64, maxset int64) bool {
	if *j >= maxset {
		return false
	}
	dest[*j] = c
	*j++
	return true
}

// esc interprets an @-escape at s[*i] (replace.c esc).
func esc(s []int64, i *int64) int64 {
	if s[*i] != ESCAPE {
		return s[*i]
	}
	if s[*i+1] == ENDSTR {
		return ESCAPE
	}
	*i++
	switch s[*i] {
	case 'n':
		return NEWLINE
	case 't':
		return TAB
	default:
		return s[*i]
	}
}

// dodash expands dash ranges inside a character class (replace.c dodash).
// This is the function whose delimiter parameter the paper's Section 6.4
// example scenario corrupts.
func dodash(delim int64, src []int64, i *int64, dest []int64, j *int64, maxset int64) {
	for src[*i] != delim && src[*i] != ENDSTR {
		switch {
		case src[*i] == ESCAPE:
			addstr(esc(src, i), dest, j, maxset)
		case src[*i] != DASH:
			addstr(src[*i], dest, j, maxset)
		case *j <= 1 || src[*i+1] == ENDSTR:
			addstr(DASH, dest, j, maxset)
		case isalnum(src[*i-1]) && isalnum(src[*i+1]) && src[*i-1] <= src[*i+1]:
			for k := src[*i-1] + 1; k <= src[*i+1]; k++ {
				addstr(k, dest, j, maxset)
			}
			*i++
		default:
			addstr(DASH, dest, j, maxset)
		}
		*i++
	}
}

// getccl parses a [...] class into pat (replace.c getccl).
func getccl(arg []int64, i *int64, pat []int64, j *int64) bool {
	*i++ // skip over [
	if arg[*i] == NEGATE {
		addstr(NCCL, pat, j, MAXSTR)
		*i++
	} else {
		addstr(CCL, pat, j, MAXSTR)
	}
	jstart := *j
	addstr(0, pat, j, MAXSTR)
	dodash(CCLEND, arg, i, pat, j, MAXSTR)
	pat[jstart] = *j - jstart - 1
	return arg[*i] == CCLEND
}

// stclose rewrites the last pattern element as a closure (replace.c stclose).
func stclose(pat []int64, j *int64, lastj int64) {
	for jt := *j - 1; jt >= lastj; jt-- {
		jp := jt + CLOSIZE
		addstr(pat[jt], pat, &jp, MAXSTR)
	}
	*j += CLOSIZE
	pat[lastj] = CLOSURE
}

// inSet2 reports pattern codes a closure may not follow (replace.c in_set_2).
func inSet2(c int64) bool { return c == BOL || c == EOL || c == CLOSURE }

// Makepat encodes the pattern in arg (from index start to delim) into pat,
// returning the index of the delimiter, or 0 on error (replace.c makepat).
func Makepat(arg []int64, start, delim int64, pat []int64) int64 {
	var (
		i     = start
		j     int64
		lastj int64
		done  bool
	)
	for !done && arg[i] != delim && arg[i] != ENDSTR {
		lj := j
		switch {
		case arg[i] == ANY:
			addstr(ANY, pat, &j, MAXSTR)
		case arg[i] == BOL && i == start:
			addstr(BOL, pat, &j, MAXSTR)
		case arg[i] == EOL && arg[i+1] == delim:
			addstr(EOL, pat, &j, MAXSTR)
		case arg[i] == CCL:
			done = !getccl(arg, &i, pat, &j)
		case arg[i] == CLOSURE && i > start:
			lj = lastj
			if inSet2(pat[lj]) {
				done = true
			} else {
				stclose(pat, &j, lastj)
			}
		default:
			addstr(LITCHAR, pat, &j, MAXSTR)
			addstr(esc(arg, &i), pat, &j, MAXSTR)
		}
		lastj = lj
		if !done {
			i++
		}
	}
	junk := addstr(ENDSTR, pat, &j, MAXSTR)
	if done || arg[i] != delim || !junk {
		return 0
	}
	return i
}

// Makesub encodes the substitution in arg into sub (replace.c makesub).
func Makesub(arg []int64, from, delim int64, sub []int64) int64 {
	var (
		i = from
		j int64
	)
	for arg[i] != delim && arg[i] != ENDSTR {
		if arg[i] == AMPER {
			addstr(DITTO, sub, &j, MAXSTR)
		} else {
			addstr(esc(arg, &i), sub, &j, MAXSTR)
		}
		i++
	}
	if arg[i] != delim {
		return 0
	}
	if !addstr(ENDSTR, sub, &j, MAXSTR) {
		return 0
	}
	return i
}

// patsize returns the encoded size of the pattern element at n (replace.c
// patsize). Unknown codes return -1 (replace.c calls Caseerror).
func patsize(pat []int64, n int64) int64 {
	switch pat[n] {
	case LITCHAR:
		return 2
	case BOL, EOL, ANY:
		return 1
	case CCL, NCCL:
		return pat[n+1] + 2
	case CLOSURE:
		return CLOSIZE
	default:
		return -1
	}
}

// Locate searches a class body for c (replace.c locate; paper Table 3:
// "called by amatch to find whether the pattern appears at a string index").
func Locate(c int64, pat []int64, offset int64) bool {
	for i := offset + pat[offset]; i > offset; i-- {
		if c == pat[i] {
			return true
		}
	}
	return false
}

// omatch matches a single pattern element at lin[*i] (replace.c omatch).
func omatch(lin []int64, i *int64, pat []int64, j int64) bool {
	if lin[*i] == ENDSTR {
		return false
	}
	advance := int64(-1)
	switch pat[j] {
	case LITCHAR:
		if lin[*i] == pat[j+1] {
			advance = 1
		}
	case BOL:
		if *i == 0 {
			advance = 0
		}
	case ANY:
		if lin[*i] != NEWLINE {
			advance = 1
		}
	case EOL:
		if lin[*i] == NEWLINE {
			advance = 0
		}
	case CCL:
		if Locate(lin[*i], pat, j+1) {
			advance = 1
		}
	case NCCL:
		if lin[*i] != NEWLINE && !Locate(lin[*i], pat, j+1) {
			advance = 1
		}
	}
	if advance >= 0 {
		*i += advance
		return true
	}
	return false
}

// Amatch matches the whole pattern anchored at offset, returning the index
// just past the match or -1 (replace.c amatch; paper Table 3: "returns the
// position where pattern matched"). Closure backtracking recurses.
func Amatch(lin []int64, offset int64, pat []int64, j int64) int64 {
	for pat[j] != ENDSTR {
		if pat[j] == CLOSURE {
			j += patsize(pat, j) // step over CLOSURE
			i := offset
			// Match as many as possible.
			for lin[i] != ENDSTR {
				if !omatch(lin, &i, pat, j) {
					break
				}
			}
			// Shrink the closure by one after each failure of the rest.
			var k int64 = -1
			for i >= offset {
				k = Amatch(lin, i, pat, j+patsize(pat, j))
				if k >= 0 {
					break
				}
				i--
			}
			return k
		}
		if !omatch(lin, &offset, pat, j) {
			return -1
		}
		j += patsize(pat, j)
	}
	return offset
}

// putsub emits the substitution for lin[s1:s2] (replace.c putsub).
func putsub(lin []int64, s1, s2 int64, sub []int64, out *[]int64) {
	for i := int64(0); sub[i] != ENDSTR; i++ {
		if sub[i] == DITTO {
			for j := s1; j < s2; j++ {
				*out = append(*out, lin[j])
			}
		} else {
			*out = append(*out, sub[i])
		}
	}
}

// Subline rewrites one line through the pattern and substitution (replace.c
// subline), returning the emitted character codes.
func Subline(lin []int64, pat []int64, sub []int64) []int64 {
	var (
		out   []int64
		lastm = int64(-1)
		i     int64
	)
	for lin[i] != ENDSTR {
		m := Amatch(lin, i, pat, 0)
		if m >= 0 && lastm != m {
			putsub(lin, i, m, sub, &out)
			lastm = m
		}
		if m == -1 || m == i {
			out = append(out, lin[i])
			i++
		} else {
			i = m
		}
	}
	return out
}

// Oracle runs the full pipeline on a pattern, substitution and line (all as
// Go strings), mirroring the assembly driver: an illegal pattern or
// substitution emits a -2 or -3 marker respectively (and sets ok=false), and
// the line is then still processed with the partially-built encoding — the
// behaviour behind the paper's Section 6.4 scenario, where an erroneously
// constructed pattern "leads to a failure in the pattern match" and the
// program "returns the original string without the substitution".
func Oracle(pattern, substitution, line string) (out []int64, ok bool) {
	return OracleLines(pattern, substitution, line)
}

// OracleLines is Oracle over several input lines, mirroring the driver's
// change() loop (replace.c processes standard input line by line).
func OracleLines(pattern, substitution string, lines ...string) (out []int64, ok bool) {
	pat := make([]int64, MAXSTR+2)
	sub := make([]int64, MAXSTR+2)
	argPat := Str(pattern)
	argSub := Str(substitution)
	ok = true
	if Makepat(argPat, 0, ENDSTR, pat) == 0 {
		out = append(out, -2)
		ok = false
	}
	if Makesub(argSub, 0, ENDSTR, sub) == 0 {
		out = append(out, -3)
		ok = false
	}
	for _, line := range lines {
		out = append(out, Subline(Line(line), pat, sub)...)
	}
	return out, ok
}
