package replace

import (
	"testing"

	"symplfied/internal/checker"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/machine"
	"symplfied/internal/symexec"
)

// TestSymbolicDodashDelimiterScenario reproduces the paper's Section 6.4
// example: "an input parameter to the dodash function that holds the
// delimiter (']') for a character range was injected. An erroneous pattern
// is constructed, which leads to a failure in the pattern match. As a
// result, the program returns the original string without the substitution."
//
// The injection corrupts $4 (the delimiter argument) at the jal dodash call
// inside getccl. SymPLFIED must enumerate incorrect program outcomes: paths
// where the erroneous delimiter makes dodash consume the wrong span, so the
// constructed pattern is either rejected or matches the wrong text.
func TestSymbolicDodashDelimiterScenario(t *testing.T) {
	prog := Program()
	callPC, err := DodashDelimCallPC(prog)
	if err != nil {
		t.Fatal(err)
	}

	const (
		pattern = "[ab]c]"
		subst   = "X"
		line    = "qac]q"
	)
	input := Input(pattern, subst, line)

	// Fault-free reference output.
	ref := machine.New(prog, input, machine.Options{Watchdog: 2_000_000})
	res := ref.Run()
	if res.Status != machine.StatusHalted {
		t.Fatalf("reference run: %v (%v)", res.Status, res.Exception)
	}
	expected := machine.RenderOutput(res.Output)
	if want := Render(mustConcrete(t, machine.OutputValues(res.Output))); want != "qXq\n" {
		t.Fatalf("reference output %q, want %q", want, "qXq\n")
	}

	exec := symexec.DefaultOptions()
	exec.Watchdog = 200_000
	ir, err := checker.RunInjection(checker.Spec{
		Program:     prog,
		Input:       input,
		Exec:        exec,
		Predicate:   checker.IncorrectOutput(expected),
		StateBudget: 3_000_000,
	}, faults.Injection{
		Class: faults.ClassRegister,
		PC:    callPC,
		Loc:   isa.RegLoc(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ir.Activated {
		t.Fatal("dodash delimiter injection never activated")
	}
	if len(ir.Findings) == 0 {
		t.Fatalf("no incorrect-output finding; outcomes %v", ir.Outcomes)
	}

	// The correct execution must also be among the enumerated paths: the
	// fork where the erroneous delimiter happens to equal ']' behaves
	// exactly like the fault-free run (a benign error).
	benign := false
	unsubstituted := false
	all, err := checker.RunInjection(checker.Spec{
		Program:     prog,
		Input:       input,
		Exec:        exec,
		Predicate:   checker.OutcomeIs(symexec.OutcomeNormal),
		StateBudget: 3_000_000,
	}, faults.Injection{Class: faults.ClassRegister, PC: callPC, Loc: isa.RegLoc(4)})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range all.Findings {
		if f.State.OutputString() == expected {
			benign = true
		}
		vals := f.State.OutputValues()
		allConcrete := true
		codes := make([]int64, 0, len(vals))
		for _, v := range vals {
			c, isConc := v.Concrete()
			if !isConc {
				allConcrete = false
				break
			}
			codes = append(codes, c)
		}
		if !allConcrete {
			continue
		}
		// "Returns the original string without the substitution": the
		// intended full match "ac]" survives in the (decoded) output.
		if containsSubstring(Render(codes), "ac]") {
			unsubstituted = true
		}
	}
	if !benign {
		t.Error("benign fork (erroneous delimiter equal to ']') not enumerated")
	}
	if !unsubstituted {
		t.Error("no path returning the text without the intended substitution")
	}
}

func containsSubstring(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func mustConcrete(t *testing.T, vals []isa.Value) []int64 {
	t.Helper()
	return concrete(t, vals)
}
