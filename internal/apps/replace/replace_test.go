package replace

import (
	"testing"

	"symplfied/internal/isa"
	"symplfied/internal/machine"
)

// oracleString runs the Go oracle and renders its output.
func oracleString(t *testing.T, pattern, sub, line string) string {
	t.Helper()
	out, _ := Oracle(pattern, sub, line)
	return Render(out)
}

func TestOracleBehaviour(t *testing.T) {
	cases := []struct {
		pattern, sub, line string
		want               string
	}{
		{"abc", "xyz", "say abc twice abc", "say xyz twice xyz\n"},
		{"a", "b", "banana", "bbnbnb\n"},
		{"?", "x", "hi", "xx\n"}, // '?' matches any char except newline
		{"%ab", "X", "abab", "Xab\n"},
		{"ab$", "X", "ab abab", "ab abX\n"},
		{"[0-9]", "#", "a1b22c", "a#b##c\n"},
		{"[^0-9]", "#", "a1b2", "#1#2\n"},     // NCCL never matches the newline
		{"x*", "<&>", "axxb", "<>a<xx>b<>\n"}, // lastm suppresses the empty match after "xx"
		{"a@?", "Q", "xa?y a!", "xQy a!\n"},   // escaped ? is literal
		{"[a-c]*d", "*", "abcd x", "* x\n"},
		{"no-match", "Z", "hello", "hello\n"},
	}
	for _, c := range cases {
		got := oracleString(t, c.pattern, c.sub, c.line)
		if got != c.want {
			t.Errorf("Oracle(%q,%q,%q) = %q, want %q", c.pattern, c.sub, c.line, got, c.want)
		}
	}
}

func TestOracleIllegalSpecs(t *testing.T) {
	// An unterminated class emits the -2 marker, then processes the line
	// with the partial pattern: the class never closed, so nothing matches
	// (the Section 6.4 "original string without substitution" behaviour).
	out, ok := Oracle("[abc", "x", "line")
	if ok || len(out) == 0 || out[0] != -2 {
		t.Fatalf("unterminated class: got %v ok=%v, want leading -2 and ok=false", out, ok)
	}
	if got := Render(out[1:]); got != "line\n" {
		t.Errorf("unterminated class: line %q, want unchanged %q", got, "line\n")
	}

	// The empty substitution is reported as illegal by the replace.c driver
	// convention (makesub returns index 0), then applied as a deletion.
	out, ok = Oracle("abc", "", "xabcx")
	if ok || len(out) == 0 || out[0] != -3 {
		t.Fatalf("empty substitution: got %v ok=%v, want leading -3 and ok=false", out, ok)
	}
	if got := Render(out[1:]); got != "xx\n" {
		t.Errorf("empty substitution: line %q, want deletion %q", got, "xx\n")
	}
}

// TestAssemblyMatchesOracle cross-validates the assembly implementation
// against the Go oracle across the pattern-language feature matrix.
func TestAssemblyMatchesOracle(t *testing.T) {
	prog := Program()
	cases := []struct{ pattern, sub, line string }{
		{"abc", "xyz", "say abc twice abc"},
		{"a", "b", "banana"},
		{"?", "x", "hi"},
		{"%ab", "X", "abab"},
		{"ab$", "X", "ab abab"},
		{"[0-9]", "#", "a1b22c"},
		{"[^0-9]", "#", "a1b2"},
		{"[a-cx]", ".", "axbycz"},
		{"x*", "<&>", "axxb"},
		{"[0-9]*", "N", "ab123cd9"},
		{"a@?", "Q", "xa?y a!"},
		{"@tb", "T", "a\tb"},
		{"[a-c]*d", "*", "abcd x"},
		{"a?c", "&!", "abc adc axx"},
		{"no-match", "Z", "hello"},
		{"[abc", "x", "line"}, // illegal pattern: -2 marker then partial pattern
		{"abc", "", "xabcx"},  // "illegal" empty substitution: -3 marker then deletion
		{"%", "^", "bol"},
		{"-", "_", "a-b"},
		{"[-x]", "+", "a-xb"},
		{"&", "and", "you & me"},
		{"ab*c", "!", "ac abc abbbbc"},
	}
	for _, c := range cases {
		wantCodes, wantOK := Oracle(c.pattern, c.sub, c.line)
		m := machine.New(prog, Input(c.pattern, c.sub, c.line), machine.Options{Watchdog: 2_000_000})
		res := m.Run()
		if res.Status != machine.StatusHalted {
			t.Fatalf("(%q,%q,%q): machine %v (exception %v)", c.pattern, c.sub, c.line, res.Status, res.Exception)
		}
		got := machine.OutputValues(res.Output)
		if len(got) != len(wantCodes) {
			t.Fatalf("(%q,%q,%q): assembly printed %d values %q, oracle %d values %q (ok=%v)",
				c.pattern, c.sub, c.line, len(got), Render(concrete(t, got)), len(wantCodes), Render(wantCodes), wantOK)
		}
		for i := range got {
			v, ok := got[i].Concrete()
			if !ok || v != wantCodes[i] {
				t.Fatalf("(%q,%q,%q): output[%d] = %v, want %d (assembly %q vs oracle %q)",
					c.pattern, c.sub, c.line, i, got[i], wantCodes[i], Render(concrete(t, got)), Render(wantCodes))
			}
		}
	}
}

func concrete(t *testing.T, vals []isa.Value) []int64 {
	t.Helper()
	out := make([]int64, 0, len(vals))
	for _, v := range vals {
		c, _ := v.Concrete()
		out = append(out, c)
	}
	return out
}

// TestMultiLineChangeLoop: the driver's change() loop processes several
// input lines with one compiled pattern, matching the oracle line for line.
func TestMultiLineChangeLoop(t *testing.T) {
	prog := Program()
	lines := []string{"axx b cx", "no match here q", "ccc", ""}
	want, _ := OracleLines("[a-c]x*", "<&>", lines...)
	m := machine.New(prog, InputLines("[a-c]x*", "<&>", lines...), machine.Options{Watchdog: 5_000_000})
	res := m.Run()
	if res.Status != machine.StatusHalted {
		t.Fatalf("machine %v (%v)", res.Status, res.Exception)
	}
	got := concrete(t, machine.OutputValues(res.Output))
	if Render(got) != Render(want) {
		t.Fatalf("multi-line output %q, want %q", Render(got), Render(want))
	}
}

// TestZeroLinesChangeLoop: a zero line count emits nothing after the spec
// markers.
func TestZeroLinesChangeLoop(t *testing.T) {
	prog := Program()
	m := machine.New(prog, InputLines("abc", "x"), machine.Options{Watchdog: 1_000_000})
	res := m.Run()
	if res.Status != machine.StatusHalted {
		t.Fatalf("machine %v (%v)", res.Status, res.Exception)
	}
	if vals := machine.OutputValues(res.Output); len(vals) != 0 {
		t.Fatalf("printed %v, want nothing", vals)
	}
}
