// Package tcas reproduces the paper's case-study application (Section 6): the
// Siemens-suite TCAS (Traffic alert and Collision Avoidance System) altitude
// separation advisory logic. It provides a faithful Go oracle of tcas.c and
// an assembly-language version with a genuine runtime stack and jal/jr
// call discipline, so that the paper's catastrophic scenario — a transient
// error corrupting the return address in Non_Crossing_Biased_Climb that
// redirects control to the "alt_sep = DOWNWARD_RA" assignment in
// alt_sep_test, turning an upward advisory (1) into a downward advisory
// (2) — is expressible and discoverable.
//
// The program reads 12 input parameters and prints a single advisory:
// 0 (unresolved), 1 (upward RA) or 2 (downward RA).
package tcas

import (
	"fmt"

	"symplfied/internal/asm"
	"symplfied/internal/isa"
)

// TCAS constants (tcas.c).
const (
	OLEV       = 600 // in feets/minute
	MAXALTDIFF = 600 // max altitude difference in feet
	MINSEP     = 300 // min separation in feet
	NOZCROSS   = 100 // in feet

	NoIntent     = 0
	DoNotClimb   = 1
	DoNotDescend = 2

	TCASTA = 1
	Other  = 2

	Unresolved = 0
	UpwardRA   = 1
	DownwardRA = 2
)

// positiveRAAltThresh is tcas.c's Positive_RA_Alt_Thresh table.
var positiveRAAltThresh = [4]int64{400, 500, 640, 740}

// Inputs are the 12 parameters, in the program's read order.
type Inputs struct {
	CurVerticalSep         int64
	HighConfidence         int64
	TwoOfThreeReportsValid int64
	OwnTrackedAlt          int64
	OwnTrackedAltRate      int64
	OtherTrackedAlt        int64
	AltLayerValue          int64 // 0..3
	UpSeparation           int64
	DownSeparation         int64
	OtherRAC               int64
	OtherCapability        int64
	ClimbInhibit           int64
}

// Slice returns the inputs in read order.
func (in Inputs) Slice() []int64 {
	return []int64{
		in.CurVerticalSep, in.HighConfidence, in.TwoOfThreeReportsValid,
		in.OwnTrackedAlt, in.OwnTrackedAltRate, in.OtherTrackedAlt,
		in.AltLayerValue, in.UpSeparation, in.DownSeparation,
		in.OtherRAC, in.OtherCapability, in.ClimbInhibit,
	}
}

// UpwardInput is the experiment input (Section 6.1): a configuration for
// which the fault-free execution produces the upward advisory (1).
func UpwardInput() Inputs {
	return Inputs{
		CurVerticalSep:         601,
		HighConfidence:         1,
		TwoOfThreeReportsValid: 1,
		OwnTrackedAlt:          500,
		OwnTrackedAltRate:      600,
		OtherTrackedAlt:        600,
		AltLayerValue:          0,
		UpSeparation:           740,
		DownSeparation:         399,
		OtherRAC:               NoIntent,
		OtherCapability:        TCASTA,
		ClimbInhibit:           0,
	}
}

// Oracle is the reference implementation of tcas.c's alt_sep_test over the
// given inputs (exactly the code in the paper's Figure 4 and its callees).
func Oracle(in Inputs) int64 {
	ownBelowThreat := func() bool { return in.OwnTrackedAlt < in.OtherTrackedAlt }
	ownAboveThreat := func() bool { return in.OtherTrackedAlt < in.OwnTrackedAlt }
	alim := func() int64 { return positiveRAAltThresh[in.AltLayerValue] }
	inhibitBiasedClimb := func() int64 {
		if in.ClimbInhibit != 0 {
			return in.UpSeparation + NOZCROSS
		}
		return in.UpSeparation
	}
	nonCrossingBiasedClimb := func() bool {
		upwardPreferred := inhibitBiasedClimb() > in.DownSeparation
		if upwardPreferred {
			return !ownBelowThreat() || (ownBelowThreat() && !(in.DownSeparation >= alim()))
		}
		return ownAboveThreat() && in.CurVerticalSep >= MINSEP && in.UpSeparation >= alim()
	}
	nonCrossingBiasedDescend := func() bool {
		upwardPreferred := inhibitBiasedClimb() > in.DownSeparation
		if upwardPreferred {
			return ownBelowThreat() && in.CurVerticalSep >= MINSEP && in.DownSeparation >= alim()
		}
		return !ownAboveThreat() || (ownAboveThreat() && in.UpSeparation >= alim())
	}

	enabled := in.HighConfidence != 0 && in.OwnTrackedAltRate <= OLEV && in.CurVerticalSep > MAXALTDIFF
	tcasEquipped := in.OtherCapability == TCASTA
	intentNotKnown := in.TwoOfThreeReportsValid != 0 && in.OtherRAC == NoIntent

	altSep := int64(Unresolved)
	if enabled && ((tcasEquipped && intentNotKnown) || !tcasEquipped) {
		needUpwardRA := nonCrossingBiasedClimb() && ownBelowThreat()
		needDownwardRA := nonCrossingBiasedDescend() && ownAboveThreat()
		switch {
		case needUpwardRA && needDownwardRA:
			altSep = Unresolved
		case needUpwardRA:
			altSep = UpwardRA
		case needDownwardRA:
			altSep = DownwardRA
		default:
			altSep = Unresolved
		}
	}
	return altSep
}

// Memory layout of the assembly program: the 12 globals live at words
// 100..111 (read order), the Positive_RA_Alt_Thresh table at 120..123, the
// stack top starts at word 10000 and grows downward.
const (
	GlobalBase = 100
	TableBase  = 120
	StackTop   = 10000
)

// Source is the assembly program. Calling convention: result in $2, return
// address in $31 (written by jal), stack pointer in $29. Non-leaf functions
// save $31 in their frame and restore it in the epilogue before jr — like
// MIPS gcc output, which is what makes the paper's catastrophic corruption
// of $31 at the "jr $31" of Non_Crossing_Biased_Climb reachable.
const Source = `
-- ============================== main ==============================
main:	li $29 10000            -- stack pointer
	read $8
	st $8 100($0)           -- Cur_Vertical_Sep
	read $8
	st $8 101($0)           -- High_Confidence
	read $8
	st $8 102($0)           -- Two_of_Three_Reports_Valid
	read $8
	st $8 103($0)           -- Own_Tracked_Alt
	read $8
	st $8 104($0)           -- Own_Tracked_Alt_Rate
	read $8
	st $8 105($0)           -- Other_Tracked_Alt
	read $8
	st $8 106($0)           -- Alt_Layer_Value
	read $8
	st $8 107($0)           -- Up_Separation
	read $8
	st $8 108($0)           -- Down_Separation
	read $8
	st $8 109($0)           -- Other_RAC
	read $8
	st $8 110($0)           -- Other_Capability
	read $8
	st $8 111($0)           -- Climb_Inhibit
	li $8 400               -- Positive_RA_Alt_Thresh[0..3]
	st $8 120($0)
	li $8 500
	st $8 121($0)
	li $8 640
	st $8 122($0)
	li $8 740
	st $8 123($0)
	jal alt_sep_test
	print $2
	halt

-- ========================== alt_sep_test ==========================
-- Frame: 0($29)=saved $31, 1($29)=need_upward_RA, 2($29)=NCBD result
alt_sep_test:
	subi $29 $29 4
	st $31 0($29)
	ld $8 101($0)           -- High_Confidence
	beq $8 0 AST_unresolved
	ld $8 104($0)           -- Own_Tracked_Alt_Rate
	setle $9 $8 600         -- <= OLEV
	beq $9 0 AST_unresolved
	ld $8 100($0)           -- Cur_Vertical_Sep
	setgt $9 $8 600         -- > MAXALTDIFF
	beq $9 0 AST_unresolved
	ld $8 110($0)           -- Other_Capability
	seteq $10 $8 1          -- tcas_equipped
	beq $10 0 AST_go        -- !tcas_equipped: condition holds
	ld $8 102($0)           -- Two_of_Three_Reports_Valid
	beq $8 0 AST_unresolved
	ld $8 109($0)           -- Other_RAC
	beq $8 0 AST_go         -- == NO_INTENT: intent_not_known
	jmp AST_unresolved
AST_go:
	jal Non_Crossing_Biased_Climb
	st $2 1($29)
	jal Own_Below_Threat
	ld $8 1($29)
	and $9 $8 $2            -- need_upward_RA
	st $9 1($29)
	jal Non_Crossing_Biased_Descend
	st $2 2($29)
	jal Own_Above_Threat
	ld $8 2($29)
	and $9 $8 $2            -- need_downward_RA
	ld $10 1($29)           -- need_upward_RA
	and $11 $10 $9
	bne $11 0 AST_unresolved -- both needed: unresolved
	beq $10 0 AST_check_down
	li $2 1                 -- alt_sep = UPWARD_RA
	jmp AST_done
AST_check_down:
	beq $9 0 AST_unresolved
AST_downward:
	li $2 2                 -- alt_sep = DOWNWARD_RA
	jmp AST_done
AST_unresolved:
	li $2 0                 -- alt_sep = UNRESOLVED
AST_done:
	ld $31 0($29)
	addi $29 $29 4
	jr $31

-- ================= Non_Crossing_Biased_Climb ======================
NCBC:
Non_Crossing_Biased_Climb:
	subi $29 $29 2
	st $31 0($29)
	jal Inhibit_Biased_Climb
	ld $8 108($0)           -- Down_Separation
	setgt $9 $2 $8          -- upward_preferred
	beq $9 0 NCBC_else
	jal Own_Below_Threat
	beq $2 0 NCBC_true      -- !Own_Below_Threat(): result 1
	jal ALIM
	ld $8 108($0)           -- Down_Separation
	setge $9 $8 $2          -- Down_Separation >= ALIM()
	beq $9 0 NCBC_true      -- negated: result 1
	jmp NCBC_false
NCBC_else:
	jal Own_Above_Threat
	beq $2 0 NCBC_false
	ld $8 100($0)           -- Cur_Vertical_Sep
	setge $9 $8 300         -- >= MINSEP
	beq $9 0 NCBC_false
	jal ALIM
	ld $8 107($0)           -- Up_Separation
	setge $9 $8 $2
	beq $9 0 NCBC_false
NCBC_true:
	li $2 1
	jmp NCBC_done
NCBC_false:
	li $2 0
NCBC_done:
	ld $31 0($29)
	addi $29 $29 2
	jr $31

-- ================ Non_Crossing_Biased_Descend =====================
NCBD:
Non_Crossing_Biased_Descend:
	subi $29 $29 2
	st $31 0($29)
	jal Inhibit_Biased_Climb
	ld $8 108($0)           -- Down_Separation
	setgt $9 $2 $8          -- upward_preferred
	beq $9 0 NCBD_else
	jal Own_Below_Threat
	beq $2 0 NCBD_false
	ld $8 100($0)           -- Cur_Vertical_Sep
	setge $9 $8 300
	beq $9 0 NCBD_false
	jal ALIM
	ld $8 108($0)           -- Down_Separation
	setge $9 $8 $2
	beq $9 0 NCBD_false
	jmp NCBD_true
NCBD_else:
	jal Own_Above_Threat
	beq $2 0 NCBD_true      -- !Own_Above_Threat(): result 1
	jal ALIM
	ld $8 107($0)           -- Up_Separation
	setge $9 $8 $2
	beq $9 0 NCBD_false
NCBD_true:
	li $2 1
	jmp NCBD_done
NCBD_false:
	li $2 0
NCBD_done:
	ld $31 0($29)
	addi $29 $29 2
	jr $31

-- ===================== leaf functions =============================
Own_Below_Threat:
	ld $8 103($0)           -- Own_Tracked_Alt
	ld $9 105($0)           -- Other_Tracked_Alt
	setlt $2 $8 $9
	jr $31

Own_Above_Threat:
	ld $8 105($0)           -- Other_Tracked_Alt
	ld $9 103($0)           -- Own_Tracked_Alt
	setlt $2 $8 $9
	jr $31

ALIM:
	ld $8 106($0)           -- Alt_Layer_Value
	addi $8 $8 120          -- &Positive_RA_Alt_Thresh[v]
	ld $2 0($8)
	jr $31

Inhibit_Biased_Climb:
	ld $8 111($0)           -- Climb_Inhibit
	ld $2 107($0)           -- Up_Separation
	beq $8 0 IBC_done
	addi $2 $2 100          -- + NOZCROSS
IBC_done:
	jr $31
`

// Program assembles the tcas application.
func Program() *isa.Program {
	return asm.MustParse("tcas", Source).Program
}

// ReturnJrPC locates the "jr $31" return of the function starting at label
// fn: the paper's catastrophic injection point when fn is
// Non_Crossing_Biased_Climb.
func ReturnJrPC(prog *isa.Program, fn string) (int, error) {
	start, ok := prog.Labels[fn]
	if !ok {
		return 0, fmt.Errorf("tcas: no label %q", fn)
	}
	for pc := start; pc < prog.Len(); pc++ {
		in := prog.At(pc)
		if in.Op == isa.OpJr && in.Rs == isa.RegRA {
			return pc, nil
		}
	}
	return 0, fmt.Errorf("tcas: no jr $31 after label %q", fn)
}

// DownwardAssignPC locates the "alt_sep = DOWNWARD_RA" assignment (label
// AST_downward), the landing site of the catastrophic control transfer.
func DownwardAssignPC(prog *isa.Program) (int, error) {
	pc, ok := prog.Labels["AST_downward"]
	if !ok {
		return 0, fmt.Errorf("tcas: no AST_downward label")
	}
	return pc, nil
}
