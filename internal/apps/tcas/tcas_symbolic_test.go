package tcas

import (
	"strings"
	"testing"

	"symplfied/internal/checker"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/symexec"
	"symplfied/internal/trace"
)

// TestSymbolicFindsCatastrophicAdvisoryFlip reproduces the paper's headline
// result (Section 6.2): a symbolic register error in $31 — the return
// address — inside Non_Crossing_Biased_Climb redirects control to the
// "alt_sep = DOWNWARD_RA" assignment in alt_sep_test, so the program prints
// 2 instead of 1 without any exception. Symbolic injection enumerates this
// among the arbitrary-but-valid control transfers.
func TestSymbolicFindsCatastrophicAdvisoryFlip(t *testing.T) {
	prog := Program()
	jrPC, err := ReturnJrPC(prog, "Non_Crossing_Biased_Climb")
	if err != nil {
		t.Fatal(err)
	}
	landPC, err := DownwardAssignPC(prog)
	if err != nil {
		t.Fatal(err)
	}

	exec := symexec.DefaultOptions()
	exec.Watchdog = 4000
	ir, err := checker.RunInjection(checker.Spec{
		Program:   prog,
		Input:     UpwardInput().Slice(),
		Exec:      exec,
		Predicate: checker.HaltedOutputOtherThan(UpwardRA),
	}, faults.Injection{
		Class: faults.ClassRegister,
		PC:    jrPC,
		Loc:   isa.RegLoc(isa.RegRA),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ir.Activated {
		t.Fatal("injection at NCBC return never activated")
	}

	var flip *checker.Finding
	sawZero := false
	for i := range ir.Findings {
		f := &ir.Findings[i]
		vals := f.State.OutputValues()
		if len(vals) != 1 {
			continue
		}
		if vals[0].Equal(isa.Int(DownwardRA)) {
			flip = f
		}
		if vals[0].Equal(isa.Int(Unresolved)) {
			sawZero = true
		}
	}
	if flip == nil {
		t.Fatalf("catastrophic 1->2 advisory flip not found; outcomes %v, %d findings",
			ir.Outcomes, len(ir.Findings))
	}
	if !sawZero {
		t.Error("1->0 (unresolved) incorrect advisory not found")
	}

	// The trace must show the control transfer landing on the downward
	// assignment, and the constraint store must pin the corrupted return
	// address to exactly that code location.
	evs := flip.State.Trace.Events()
	landed := false
	for _, e := range evs {
		if e.Kind == trace.KindControl && strings.Contains(e.Text, "AST_downward") {
			landed = true
		}
	}
	if !landed {
		t.Errorf("finding trace does not show landing at AST_downward:\n%s", flip.State.Trace.Render())
	}
	cons := flip.State.Sym.RootConstraints(0)
	if cons == nil {
		t.Fatal("no constraints recorded for the corrupted return address")
	}
	if v, ok := cons.Exact(); !ok || v != int64(landPC) {
		t.Errorf("corrupted $31 constrained to %v, want exactly %d", cons, landPC)
	}

	// Crashes must also be enumerated among the arbitrary landings.
	if ir.Outcomes[symexec.OutcomeCrash] == 0 {
		t.Error("no crash outcome among arbitrary control transfers")
	}
}
