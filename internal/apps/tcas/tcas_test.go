package tcas

import (
	"math/rand"
	"testing"

	"symplfied/internal/isa"
	"symplfied/internal/machine"
	"symplfied/internal/symexec"
)

func run(t *testing.T, in Inputs, opts machine.Options) machine.Result {
	t.Helper()
	m := machine.New(Program(), in.Slice(), opts)
	return m.Run()
}

func outputOf(t *testing.T, res machine.Result) int64 {
	t.Helper()
	if res.Status != machine.StatusHalted {
		t.Fatalf("status %v (exception %v)", res.Status, res.Exception)
	}
	vals := machine.OutputValues(res.Output)
	if len(vals) != 1 {
		t.Fatalf("want single printed value, got %v", vals)
	}
	v, ok := vals[0].Concrete()
	if !ok {
		t.Fatalf("printed value not concrete")
	}
	return v
}

func TestUpwardInputProducesUpwardAdvisory(t *testing.T) {
	in := UpwardInput()
	if got := Oracle(in); got != UpwardRA {
		t.Fatalf("oracle: %d, want %d", got, UpwardRA)
	}
	if got := outputOf(t, run(t, in, machine.Options{})); got != UpwardRA {
		t.Fatalf("machine: %d, want %d", got, UpwardRA)
	}
}

// TestAssemblyMatchesOracle cross-validates the assembly program against the
// Go oracle over a randomized input sweep — the model-accuracy validation the
// paper performs by comparing model behaviour with the real system
// (Section 3.1, correctness requirement 2).
func TestAssemblyMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	seen := map[int64]int{}
	for i := 0; i < 2000; i++ {
		in := Inputs{
			CurVerticalSep:         rng.Int63n(1200),
			HighConfidence:         rng.Int63n(2),
			TwoOfThreeReportsValid: rng.Int63n(2),
			OwnTrackedAlt:          rng.Int63n(2000),
			OwnTrackedAltRate:      rng.Int63n(1200),
			OtherTrackedAlt:        rng.Int63n(2000),
			AltLayerValue:          rng.Int63n(4),
			UpSeparation:           rng.Int63n(1000),
			DownSeparation:         rng.Int63n(1000),
			OtherRAC:               rng.Int63n(3),
			OtherCapability:        1 + rng.Int63n(2),
			ClimbInhibit:           rng.Int63n(2),
		}
		want := Oracle(in)
		got := outputOf(t, run(t, in, machine.Options{}))
		if got != want {
			t.Fatalf("input %+v: assembly %d, oracle %d", in, got, want)
		}
		seen[got]++
	}
	// The sweep must exercise all three advisories, or it proves little.
	for _, adv := range []int64{Unresolved, UpwardRA, DownwardRA} {
		if seen[adv] == 0 {
			t.Errorf("randomized sweep never produced advisory %d (distribution %v)", adv, seen)
		}
	}
}

// TestDirectedAdvisoryCases pins the oracle on hand-computed configurations.
func TestDirectedAdvisoryCases(t *testing.T) {
	base := UpwardInput()

	downward := base
	// Make own aircraft the higher one and bias preference downward.
	downward.OwnTrackedAlt, downward.OtherTrackedAlt = 600, 500
	downward.UpSeparation, downward.DownSeparation = 500, 740
	if got := Oracle(downward); got != DownwardRA {
		t.Fatalf("downward config: oracle %d, want %d", got, DownwardRA)
	}
	if got := outputOf(t, run(t, downward, machine.Options{})); got != DownwardRA {
		t.Fatalf("downward config: machine %d, want %d", got, DownwardRA)
	}

	disabled := base
	disabled.HighConfidence = 0
	if got := outputOf(t, run(t, disabled, machine.Options{})); got != Unresolved {
		t.Fatalf("disabled config: machine %d, want %d", got, Unresolved)
	}

	notEquippedNoIntent := base
	notEquippedNoIntent.OtherCapability = Other
	if got := Oracle(notEquippedNoIntent); got != UpwardRA {
		t.Fatalf("non-equipped config: oracle %d, want %d", got, UpwardRA)
	}
	if got := outputOf(t, run(t, notEquippedNoIntent, machine.Options{})); got != UpwardRA {
		t.Fatalf("non-equipped config: machine %d, want %d", got, UpwardRA)
	}
}

// TestCatastrophicJumpConcretely validates the catastrophic scenario the way
// the paper validated it on SimpleScalar (Section 6.2): concretely setting
// the return address of Non_Crossing_Biased_Climb to the address of the
// "alt_sep = DOWNWARD_RA" assignment turns the advisory from 1 into 2 —
// a real error, not a false positive.
func TestCatastrophicJumpConcretely(t *testing.T) {
	prog := Program()
	jrPC, err := ReturnJrPC(prog, "Non_Crossing_Biased_Climb")
	if err != nil {
		t.Fatal(err)
	}
	landPC, err := DownwardAssignPC(prog)
	if err != nil {
		t.Fatal(err)
	}

	injected := false
	m := machine.New(prog, UpwardInput().Slice(), machine.Options{
		PreStep: func(m *machine.Machine, _ int) {
			if !injected && m.PC() == jrPC {
				m.SetReg(isa.RegRA, isa.Int(int64(landPC)))
				injected = true
			}
		},
	})
	res := m.Run()
	if !injected {
		t.Fatal("injection point never reached")
	}
	if got := outputOf(t, res); got != DownwardRA {
		t.Fatalf("corrupted return address printed %d, want %d (catastrophic downward advisory)", got, DownwardRA)
	}
}

// TestSymbolicFaultFreeMatchesOracle drives the symbolic executor (with its
// call/return machinery) over random fault-free tcas inputs and requires the
// oracle's advisory — covering jal/jr/stack paths the random-program fuzzer
// does not generate.
func TestSymbolicFaultFreeMatchesOracle(t *testing.T) {
	prog := Program()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		in := Inputs{
			CurVerticalSep:         rng.Int63n(1200),
			HighConfidence:         rng.Int63n(2),
			TwoOfThreeReportsValid: rng.Int63n(2),
			OwnTrackedAlt:          rng.Int63n(2000),
			OwnTrackedAltRate:      rng.Int63n(1200),
			OtherTrackedAlt:        rng.Int63n(2000),
			AltLayerValue:          rng.Int63n(4),
			UpSeparation:           rng.Int63n(1000),
			DownSeparation:         rng.Int63n(1000),
			OtherRAC:               rng.Int63n(3),
			OtherCapability:        1 + rng.Int63n(2),
			ClimbInhibit:           rng.Int63n(2),
		}
		st := symexec.NewState(prog, nil, in.Slice(), symexec.DefaultOptions())
		for st.Running() {
			if !st.StepInPlace() {
				t.Fatalf("fault-free tcas forked at pc %d", st.PC)
			}
		}
		if st.Outcome() != symexec.OutcomeNormal {
			t.Fatalf("outcome %v (%v)", st.Outcome(), st.Exc)
		}
		vals := st.OutputValues()
		if len(vals) != 1 {
			t.Fatalf("printed %v", vals)
		}
		if v, _ := vals[0].Concrete(); v != Oracle(in) {
			t.Fatalf("symbolic %d, oracle %d for %+v", v, Oracle(in), in)
		}
	}
}
