package tcas

import (
	"fmt"
	"testing"

	"symplfied/internal/checker"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/machine"
	"symplfied/internal/symexec"
)

// TestHardenedCleanRun: the canary never fires on fault-free executions.
func TestHardenedCleanRun(t *testing.T) {
	prog, dets := Hardened()
	m := machine.New(prog, UpwardInput().Slice(), machine.Options{Detectors: dets})
	res := m.Run()
	if res.Status != machine.StatusHalted {
		t.Fatalf("status %v (%v)", res.Status, res.Exception)
	}
	vals := machine.OutputValues(res.Output)
	if len(vals) != 1 || !vals[0].Equal(isa.Int(UpwardRA)) {
		t.Fatalf("hardened clean output %v", vals)
	}
}

// TestHardenedMatchesOracleOnSweep: the hardening is behaviour-preserving
// across the advisory space.
func TestHardenedMatchesOracleOnSweep(t *testing.T) {
	prog, dets := Hardened()
	inputs := []Inputs{
		UpwardInput(),
		func() Inputs {
			in := UpwardInput()
			in.OwnTrackedAlt, in.OtherTrackedAlt = 600, 500
			in.UpSeparation, in.DownSeparation = 500, 740
			return in
		}(),
		func() Inputs { in := UpwardInput(); in.HighConfidence = 0; return in }(),
	}
	for _, in := range inputs {
		m := machine.New(prog, in.Slice(), machine.Options{Detectors: dets})
		res := m.Run()
		if res.Status != machine.StatusHalted {
			t.Fatalf("%+v: %v (%v)", in, res.Status, res.Exception)
		}
		vals := machine.OutputValues(res.Output)
		if v, _ := vals[0].Concrete(); v != Oracle(in) {
			t.Errorf("%+v: hardened printed %d, oracle %d", in, v, Oracle(in))
		}
	}
}

// TestHardeningClosesTheCatastrophicScenario is the paper's loop closed: the
// unhardened program is refuted (the 1->2 flip escapes detection), the
// hardened one is proven resilient to the same injection — every corrupted
// return-address value now either equals the correct address (benign) or
// trips the canary.
func TestHardeningClosesTheCatastrophicScenario(t *testing.T) {
	exec := symexec.DefaultOptions()
	exec.Watchdog = 4000

	// Unhardened: refuted.
	plain := Program()
	jrPC, err := ReturnJrPC(plain, "Non_Crossing_Biased_Climb")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := checker.Run(checker.Spec{
		Program: plain,
		Input:   UpwardInput().Slice(),
		Injections: []faults.Injection{{
			Class: faults.ClassRegister, PC: jrPC, Loc: isa.RegLoc(isa.RegRA),
		}},
		Exec:      exec,
		Predicate: checker.HaltedOutputOtherThan(UpwardRA),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict() != checker.VerdictRefuted {
		t.Fatalf("unhardened verdict %v, want refuted", rep.Verdict())
	}

	// Hardened: the same corruption — err in $31 as the return sequence
	// begins — is proven harmless: the canary fires for every corrupted
	// value except the one equal to the correct return address (benign).
	// The injection sits at the check itself; corruption injected *between*
	// the canary and the jr (a one-instruction TOCTTOU window) would still
	// escape, which no inline detector can close — see
	// TestHardenedResidualWindow.
	hard, dets := Hardened()
	checkPC, err := canaryPC(hard)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = checker.Run(checker.Spec{
		Program:   hard,
		Detectors: dets,
		Input:     UpwardInput().Slice(),
		Injections: []faults.Injection{{
			Class: faults.ClassRegister, PC: checkPC, Loc: isa.RegLoc(isa.RegRA),
		}},
		Exec:      exec,
		Predicate: checker.HaltedOutputOtherThan(UpwardRA),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict() != checker.VerdictProven {
		for _, f := range rep.Findings {
			t.Logf("escaping: %s", f.Describe())
		}
		t.Fatalf("hardened verdict %v, want proven (findings %d, outcomes %v)",
			rep.Verdict(), len(rep.Findings), rep.Outcomes)
	}
	if rep.Outcomes[symexec.OutcomeDetected] == 0 {
		t.Error("canary never fired symbolically")
	}
}

// canaryPC locates the "check #91" canary instruction.
func canaryPC(prog *isa.Program) (int, error) {
	for pc := 0; pc < prog.Len(); pc++ {
		if in := prog.At(pc); in.Op == isa.OpCheck && in.Imm == 91 {
			return pc, nil
		}
	}
	return 0, errNoCanary
}

var errNoCanary = fmt.Errorf("tcas: canary check not found")

// TestHardenedResidualWindow documents the inline detector's fundamental
// limit: corruption in the single-instruction window between the canary and
// the jr still escapes — SymPLFIED makes this residue explicit rather than
// letting the hardening claim full coverage.
func TestHardenedResidualWindow(t *testing.T) {
	exec := symexec.DefaultOptions()
	exec.Watchdog = 4000
	hard, dets := Hardened()
	jrPC, err := ReturnJrPC(hard, "Non_Crossing_Biased_Climb")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := checker.Run(checker.Spec{
		Program:   hard,
		Detectors: dets,
		Input:     UpwardInput().Slice(),
		Injections: []faults.Injection{{
			Class: faults.ClassRegister, PC: jrPC, Loc: isa.RegLoc(isa.RegRA),
		}},
		Exec:      exec,
		Predicate: checker.HaltedOutputOtherThan(UpwardRA),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict() != checker.VerdictRefuted {
		t.Fatalf("post-canary corruption verdict %v, want refuted (the residual window)", rep.Verdict())
	}
}
