package tcas

import (
	"fmt"
	"strings"

	"symplfied/internal/asm"
	"symplfied/internal/detector"
	"symplfied/internal/isa"
)

// Hardened returns the tcas program protected against the catastrophic
// scenario the symbolic study exposes: a return-address canary detector at
// Non_Crossing_Biased_Climb's return.
//
// This is the paper's closing loop (Section 4.2: "the programmer can then
// formulate a detector to handle the case ... the errors that evade
// detection are made explicit"): the study finds that a corrupted $31 at
// NCBC's jr redirects control into alt_sep_test; the countermeasure checks,
// after the epilogue restored $31 from the frame, that $31 still equals the
// saved copy — which remains in (now stale but defined) memory at the known
// frame address. A corrupted return address then trips the check instead of
// hijacking control.
//
// The saved-RA address is static on this call path: alt_sep_test's frame
// starts at StackTop-4 and NCBC's at StackTop-4-2, with the return address
// in slot 0.
func Hardened() (*isa.Program, *detector.Table) {
	const savedRA = StackTop - 4 - 2

	canary := fmt.Sprintf("\tdet(91, $31, ==, *(%d))", savedRA)
	// Insert "check #91" between NCBC's epilogue restore and its jr.
	const epilogue = "NCBC_done:\n\tld $31 0($29)\n\taddi $29 $29 2\n\tjr $31"
	const protected = "NCBC_done:\n\tld $31 0($29)\n\taddi $29 $29 2\n\tcheck #91\n\tjr $31"
	if !strings.Contains(Source, epilogue) {
		panic("tcas: NCBC epilogue not found for hardening")
	}
	src := canary + "\n" + strings.Replace(Source, epilogue, protected, 1)
	u := asm.MustParse("tcas-hardened", src)
	return u.Program, u.Detectors
}
