package factorial

import (
	"strings"
	"testing"

	"symplfied/internal/isa"
	"symplfied/internal/machine"
	"symplfied/internal/symexec"
)

func TestPlainComputesFactorial(t *testing.T) {
	for _, n := range []int64{0, 1, 2, 3, 5, 10, 12} {
		m := machine.New(Plain(), []int64{n}, machine.Options{})
		res := m.Run()
		if res.Status != machine.StatusHalted {
			t.Fatalf("n=%d: status %v (exception %v)", n, res.Status, res.Exception)
		}
		vals := machine.OutputValues(res.Output)
		if len(vals) != 1 {
			t.Fatalf("n=%d: want 1 printed value, got %v", n, vals)
		}
		got, ok := vals[0].Concrete()
		if !ok || got != Oracle(n) {
			t.Errorf("n=%d: printed %v, want %d", n, vals[0], Oracle(n))
		}
		if want := "Factorial = "; !strings.HasPrefix(machine.RenderOutput(res.Output), want) {
			t.Errorf("n=%d: output %q lacks prefix %q", n, machine.RenderOutput(res.Output), want)
		}
	}
}

// TestWithDetectorsPaperLiteral documents the behaviour of the paper's
// literal Figure 3 program: its second detector ($2 >= $6 * $1) is
// illustrative rather than sound — on a clean run with input > 1 it fires in
// the second loop iteration, because p*current < p*input once current has
// been decremented.
func TestWithDetectorsPaperLiteral(t *testing.T) {
	prog, dets := WithDetectors()
	if dets.Len() != 2 {
		t.Fatalf("want 2 detectors, got %d", dets.Len())
	}

	// Input 1 skips the loop body entirely: no check executes, clean halt.
	m := machine.New(prog, []int64{1}, machine.Options{Detectors: dets})
	res := m.Run()
	if res.Status != machine.StatusHalted {
		t.Fatalf("input 1: status %v (exception %v)", res.Status, res.Exception)
	}
	vals := machine.OutputValues(res.Output)
	if len(vals) != 1 || !vals[0].Equal(isa.Int(1)) {
		t.Fatalf("input 1: printed %v, want [1]", vals)
	}

	// Input 5 reaches the literal detector's over-strict condition.
	m = machine.New(prog, []int64{5}, machine.Options{Detectors: dets})
	res = m.Run()
	if res.Status != machine.StatusExcepted || res.Exception.Kind != isa.ExcDetected {
		t.Fatalf("input 5: want detection by literal Figure 3 detector, got %v (%v)", res.Status, res.Exception)
	}
}

func TestWithExactDetectorsCleanRunPasses(t *testing.T) {
	prog, dets := WithExactDetectors()
	if dets.Len() != 2 {
		t.Fatalf("want 2 detectors, got %d", dets.Len())
	}
	m := machine.New(prog, []int64{5}, machine.Options{Detectors: dets})
	res := m.Run()
	if res.Status != machine.StatusHalted {
		t.Fatalf("status %v (exception %v)", res.Status, res.Exception)
	}
	vals := machine.OutputValues(res.Output)
	if len(vals) != 1 || !vals[0].Equal(isa.Int(120)) {
		t.Fatalf("printed %v, want [120]", vals)
	}
}

func TestSubiPC(t *testing.T) {
	if _, ok := SubiPC(Plain()); !ok {
		t.Error("SubiPC not found in plain program")
	}
	prog, _ := WithDetectors()
	if _, ok := SubiPC(prog); !ok {
		t.Error("SubiPC not found in detector program")
	}
}

// TestSymbolicMatchesConcreteWithoutFaults checks that in the absence of
// injected errors the symbolic executor is deterministic and agrees with the
// concrete machine (the machine model is "completely deterministic",
// Section 5.1).
func TestSymbolicMatchesConcreteWithoutFaults(t *testing.T) {
	prog := Plain()
	st := symexec.NewState(prog, nil, []int64{5}, symexec.DefaultOptions())
	for st.Running() {
		succs := st.Successors()
		if len(succs) != 1 {
			t.Fatalf("fault-free execution forked: %d successors at pc %d", len(succs), st.PC)
		}
		st = succs[0]
	}
	if st.Outcome() != symexec.OutcomeNormal {
		t.Fatalf("outcome %v, want normal", st.Outcome())
	}
	if got, want := st.OutputString(), "Factorial = 120"; got != want {
		t.Fatalf("output %q, want %q", got, want)
	}

	m := machine.New(prog, []int64{5}, machine.Options{})
	res := m.Run()
	if machine.RenderOutput(res.Output) != st.OutputString() {
		t.Fatalf("symbolic output %q != concrete output %q", st.OutputString(), machine.RenderOutput(res.Output))
	}
	if res.Steps != st.Steps {
		t.Fatalf("symbolic steps %d != concrete steps %d", st.Steps, res.Steps)
	}
}
