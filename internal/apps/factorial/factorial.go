// Package factorial provides the paper's running example (Section 4): a
// program computing n! in the generic assembly language, in plain form
// (Figure 2) and in detector-protected form (Figure 3). It also provides a
// Go oracle for expected outputs.
package factorial

import (
	"symplfied/internal/asm"
	"symplfied/internal/detector"
	"symplfied/internal/isa"
)

// SourcePlain is the paper's Figure 2 program, verbatim modulo assembler
// syntax: p in $2, input i in $1, loop counter in $3.
const SourcePlain = `
	ori $2 $0 #1        -- initial product p = 1
	read $1             -- read i from input
	mov $3 $1
	ori $4 $0 #1        -- for comparison purposes
loop:	setgt $5 $3 $4      -- start of loop
	beq $5 0 exit       -- loop condition: $3 > $4
	mult $2 $2 $3       -- p = p * i
	subi $3 $3 #1       -- i = i - 1
	beq $0 0 loop       -- loop backedge
exit:	prints "Factorial = "
	print $2
	halt
`

// SourceDetectors is the paper's Figure 3 program: the same computation
// augmented with two detectors (and the supporting mov on line 8).
const SourceDetectors = `
	ori $2 $0 #1        -- initial product p = 1
	read $1             -- read i from input
	mov $3 $1
	ori $4 $0 #1        -- for comparison purposes
loop:	setgt $5 $3 $4      -- start of loop
	beq $5 0 exit
	check ($4 < $3)
	mov $6 $2
	mult $2 $2 $3       -- p = p * i
	check ($2 >= $6 * $1)
	subi $3 $3 #1       -- i = i - 1
	beq $0 0 loop       -- loop backedge
exit:	prints "Factorial = "
	print $2
	halt
`

// SourceDetectorsExact is a corrected variant of Figure 3 whose second
// detector checks the exact multiplicative invariant $2 == $6 * $3 (the value
// just computed), so that fault-free executions never trigger it. The
// paper's literal Figure 3 detector ($2 >= $6 * $1) is purely illustrative
// and fires on clean runs from the second loop iteration on.
const SourceDetectorsExact = `
	ori $2 $0 #1        -- initial product p = 1
	read $1             -- read i from input
	mov $3 $1
	ori $4 $0 #1        -- for comparison purposes
loop:	setgt $5 $3 $4      -- start of loop
	beq $5 0 exit
	check ($4 < $3)
	mov $6 $2
	mult $2 $2 $3       -- p = p * i
	check ($2 == $6 * $3)
	subi $3 $3 #1       -- i = i - 1
	beq $0 0 loop       -- loop backedge
exit:	prints "Factorial = "
	print $2
	halt
`

// Plain assembles the Figure 2 program.
func Plain() *isa.Program {
	return asm.MustParse("factorial", SourcePlain).Program
}

// WithDetectors assembles the Figure 3 program and its two detectors.
func WithDetectors() (*isa.Program, *detector.Table) {
	u := asm.MustParse("factorial-detectors", SourceDetectors)
	return u.Program, u.Detectors
}

// WithExactDetectors assembles the corrected detector variant (see
// SourceDetectorsExact).
func WithExactDetectors() (*isa.Program, *detector.Table) {
	u := asm.MustParse("factorial-detectors-exact", SourceDetectorsExact)
	return u.Program, u.Detectors
}

// SubiPC returns the instruction index of the "subi $3 $3 #1" loop decrement
// in prog — the paper's injection point (Section 4.1: "a fault occurs in
// register $3 ... after the loop counter is decremented"). ok is false if the
// program contains no such instruction.
func SubiPC(prog *isa.Program) (int, bool) {
	for pc := 0; pc < prog.Len(); pc++ {
		in := prog.At(pc)
		if in.Op == isa.OpSubi && in.Rd == 3 && in.Rs == 3 && in.Imm == 1 {
			return pc, true
		}
	}
	return 0, false
}

// Oracle computes n! as the program would (product over n..2 downward;
// 64-bit wraparound semantics match the machine's).
func Oracle(n int64) int64 {
	p := int64(1)
	for i := n; i > 1; i-- {
		p *= i
	}
	return p
}
