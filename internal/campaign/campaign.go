// Package campaign is the resilient runner for large fault-injection
// searches. The paper ran its exhaustive studies as hundreds of independent
// cluster tasks with a 30-minute wall-clock allotment each, precisely
// because long symbolic searches die, hang and exhaust memory in practice
// (Section 6.1); this package brings the same operational shape to a single
// process:
//
//   - every completed injection report is journaled to an append-only
//     JSON-lines checkpoint file the moment it finishes;
//   - a killed campaign (SIGINT, deadline, crash) resumes by reloading the
//     journal and skipping already-explored injections, guarded by a
//     fingerprint of the campaign spec so unrelated journals are rejected;
//   - an injection that fails transiently — panics inside the symbolic
//     executor or exceeds its wall-clock deadline — is retried up to a
//     configured number of times with a halved state budget and degraded
//     executor options (symexec.Options.Degraded), so one pathological
//     injection degrades gracefully instead of sinking the campaign;
//   - the merged checker.Report is identical to an uninterrupted sequential
//     run over the same spec (modulo discarded live states), regardless of
//     how many times the campaign was killed and resumed.
package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"

	"symplfied/internal/checker"
	"symplfied/internal/faults"
	"symplfied/internal/fingerprint"
	"symplfied/internal/obs"
)

// KindSymbolic is the journal kind written by this runner.
const KindSymbolic = "symbolic"

// Config tunes the resilient runner. The zero value runs the campaign
// sequentially with no checkpointing and no retries — equivalent to
// checker.RunCtx plus panic isolation accounting.
type Config struct {
	// Checkpoint is the journal file path; empty disables checkpointing.
	Checkpoint string
	// Resume loads the journal before running and skips injections it
	// already records. Requires Checkpoint. A missing journal file is not an
	// error (the campaign simply starts fresh).
	Resume bool
	// Retries re-runs an injection that failed transiently (panicked or hit
	// the per-injection deadline) up to this many additional times, halving
	// the state budget and degrading the executor options each attempt.
	Retries int
	// Workers sizes the worker pool; 0 (or the spec's Parallelism, when
	// Workers is unset) follows checker.Spec.Parallelism semantics: 0 means
	// GOMAXPROCS, 1 runs sequentially. Like Parallelism, Workers is
	// operational only — it never enters the campaign fingerprint.
	Workers int
	// OnInjection, if set, is called after each injection settles (resumed
	// or explored) with the number settled so far and the campaign total.
	// Called from worker goroutines under the runner's lock.
	OnInjection func(done, total int)
}

// Stats describes what the runner did, beyond the merged report.
type Stats struct {
	// Total is the campaign size (len of spec.Injections).
	Total int
	// Resumed counts injections skipped because the journal already
	// recorded them.
	Resumed int
	// Executed counts injections explored by this run.
	Executed int
	// Retried counts degraded retry attempts across all injections.
	Retried int
	// Panicked counts injections still marked panicked after retries.
	Panicked int
	// TimedOut counts injections still marked deadline-expired after
	// retries.
	TimedOut int
	// Errored counts injections recorded with an infrastructure error.
	Errored int
	// NotAttempted counts injections never started because the campaign was
	// cancelled first; they are the resume frontier.
	NotAttempted int
	// Interrupted is true when the campaign was cancelled or deadlined
	// before settling every injection.
	Interrupted bool
}

// Fingerprint hashes the search identity of a spec: the program text, the
// detector table, the input, the predicate name, the executor options, the
// budgets and the full injection list. Two specs with equal fingerprints
// explore the same search space, so their journals are interchangeable.
// Operational knobs that do not change what is explored per injection
// (DiscardStates, PerInjectionTimeout) are deliberately excluded.
func Fingerprint(spec checker.Spec) string {
	h := fingerprint.New()
	h.Program(spec.Program)
	h.Detectors(spec.Detectors)
	h.Input(spec.Input)
	h.Line("predicate %s", spec.Predicate.Name)
	h.Line("exec %+v", spec.Exec)
	h.Line("budget %d findings %d dedup %v", spec.StateBudget, spec.MaxFindings, spec.Dedup)
	for _, inj := range spec.Injections {
		h.Line("inj %s", inj)
	}
	return h.Sum()
}

// Key returns the journal key of an injection: its canonical rendering,
// which is unique within an enumerated fault class.
func Key(inj faults.Injection) string { return inj.String() }

// Run executes the campaign described by spec under ctx with the resilience
// features of cfg, returning the merged report (per-injection reports in
// spec order, regardless of worker interleaving or resume history) and the
// runner stats. Cancellation returns the partial merged report with
// Interrupted set, never an error: whatever was swept is worth pooling.
func Run(ctx context.Context, spec checker.Spec, cfg Config) (*checker.Report, Stats, error) {
	if spec.Program == nil {
		return nil, Stats{}, fmt.Errorf("campaign: nil program")
	}
	if spec.Predicate.Match == nil {
		return nil, Stats{}, fmt.Errorf("campaign: nil predicate")
	}
	if cfg.Resume && cfg.Checkpoint == "" {
		return nil, Stats{}, fmt.Errorf("campaign: Resume requires a Checkpoint path")
	}

	stats := Stats{Total: len(spec.Injections)}
	fingerprint := Fingerprint(spec)
	// One pruning context and one summary context for the whole campaign,
	// shared by every worker's spec copy (both are operational, like
	// Parallelism: absent from the fingerprint, and a resumed pruned or
	// summarized campaign merges with a plain journal because the reports
	// are identical modulo the Pruned/Summarized markers). The summary
	// cache on the spec survives checkpoint/resume: the content-addressed
	// keys make stale entries unreachable, never wrong.
	spec.EnsurePrune()
	spec.EnsureSummaries()

	journaled := map[string]json.RawMessage{}
	if cfg.Resume {
		var err error
		journaled, err = LoadJournal(cfg.Checkpoint, KindSymbolic, fingerprint)
		if err != nil {
			return nil, Stats{}, err
		}
	}

	var journal *Journal
	if cfg.Checkpoint != "" {
		var err error
		journal, err = OpenJournal(cfg.Checkpoint, KindSymbolic, fingerprint)
		if err != nil {
			return nil, Stats{}, err
		}
	}

	results := make([]checker.InjectionReport, len(spec.Injections))
	settled := make([]bool, len(spec.Injections))

	var (
		mu       sync.Mutex // guards stats, done counter, journalErr
		done     int
		jErr     error
		wg       sync.WaitGroup
		indexes  = make(chan int)
		workers  = cfg.Workers
		injTotal = len(spec.Injections)
	)
	if workers <= 0 {
		// Inherit the spec's Parallelism knob (0: GOMAXPROCS), so a
		// context-first caller sets one field and every engine respects it.
		workers = spec.Parallelism
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > injTotal {
		workers = injTotal
	}

	// Decomposition-progress gauges: the campaign's unit of work is one
	// injection. Deltas, not Set, so a concurrently-running cluster study on
	// the same process stays additive; the defer retires this campaign's
	// contribution when it returns.
	var (
		reg        = obs.Default()
		tasksTotal = reg.Gauge(obs.MTasksTotal)
		tasksDone  = reg.Gauge(obs.MTasksDone)
	)
	tasksTotal.Add(int64(injTotal))
	defer func() {
		mu.Lock()
		retire := int64(done)
		mu.Unlock()
		tasksTotal.Add(-int64(injTotal))
		tasksDone.Add(-retire)
	}()

	settle := func(i int, ir checker.InjectionReport, resumed bool, retried int) {
		results[i] = ir
		settled[i] = true
		mu.Lock()
		defer mu.Unlock()
		done++
		tasksDone.Add(1)
		stats.Retried += retried
		if resumed {
			stats.Resumed++
		} else {
			stats.Executed++
		}
		if ir.Panicked {
			stats.Panicked++
		}
		if ir.TimedOut {
			stats.TimedOut++
		}
		if ir.Error != "" {
			stats.Errored++
		}
		if cfg.OnInjection != nil {
			cfg.OnInjection(done, injTotal)
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indexes {
				inj := spec.Injections[i]
				key := Key(inj)

				if raw, ok := journaled[key]; ok {
					var ir checker.InjectionReport
					if err := json.Unmarshal(raw, &ir); err == nil {
						settle(i, ir, true, 0)
						continue
					}
					// An undecodable entry is re-explored rather than trusted.
				}

				ir, retried := runWithRetries(ctx, spec, inj, cfg.Retries)
				// Journal everything that settled on its own terms. An
				// injection cut short by campaign cancellation (or by the
				// campaign-wide deadline) is NOT journaled: it must re-run
				// in full on resume. A per-injection deadline with the
				// campaign still live is a settled outcome — the injection
				// consumed its allotment — and is journaled as such.
				complete := ctx.Err() == nil && (!ir.Interrupted || ir.TimedOut)
				if journal != nil && complete {
					if err := journal.Append(key, ir); err != nil {
						mu.Lock()
						if jErr == nil {
							jErr = err
						}
						mu.Unlock()
					}
				}
				if complete {
					settle(i, ir, false, retried)
				} else {
					// Keep the partial tallies for this run's merged report,
					// but leave the injection unsettled in stats terms: it
					// re-runs on resume.
					results[i] = ir
					settled[i] = true
					mu.Lock()
					stats.Executed++
					stats.Retried += retried
					mu.Unlock()
				}
			}
		}()
	}

dispatch:
	for i := range spec.Injections {
		select {
		case indexes <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(indexes)
	wg.Wait()

	rep := checker.NewReport(&spec)
	for i := range spec.Injections {
		if settled[i] {
			rep.Add(results[i])
		} else {
			stats.NotAttempted++
		}
	}
	if stats.NotAttempted > 0 || ctx.Err() != nil {
		rep.Interrupted = true
	}
	stats.Interrupted = rep.Interrupted

	if journal != nil {
		if err := journal.Close(); err != nil && jErr == nil {
			jErr = err
		}
	}
	if jErr != nil {
		// The exploration results are intact; only checkpoint durability is
		// compromised. Surface it: a campaign relying on resume must know.
		return rep, stats, fmt.Errorf("campaign: checkpoint journal: %w", jErr)
	}
	return rep, stats, nil
}

// runWithRetries explores one injection, retrying transient failures (panic
// or per-injection deadline) with a halved budget and degraded executor
// options per attempt. Infrastructure errors are folded into the report
// (Error field) so the campaign keeps sweeping. Returns the settled report
// and the number of retry attempts consumed.
func runWithRetries(ctx context.Context, spec checker.Spec, inj faults.Injection, retries int) (checker.InjectionReport, int) {
	ir := runOnce(ctx, spec, inj)
	retried := 0
	for attempt := 1; attempt <= retries; attempt++ {
		if ctx.Err() != nil || !transient(ir) {
			break
		}
		d := spec
		budget := spec.StateBudget
		if budget <= 0 {
			budget = checker.DefaultStateBudget
		}
		d.StateBudget = max(budget>>attempt, 1)
		d.Exec = spec.Exec.Degraded(attempt)
		ir = runOnce(ctx, d, inj)
		retried++
	}
	return ir, retried
}

// runOnce wraps checker.RunInjectionCtx, converting an infrastructure error
// into a report-level Error so the campaign survives malformed injections.
func runOnce(ctx context.Context, spec checker.Spec, inj faults.Injection) checker.InjectionReport {
	ir, err := checker.RunInjectionCtx(ctx, spec, inj)
	if err != nil {
		ir.Injection = inj
		ir.Error = err.Error()
	}
	return ir
}

// transient reports whether the injection failed in a way a degraded retry
// can plausibly fix: a panic or an expired per-injection deadline. A clean
// sweep, a blown state budget and an infrastructure error are all final.
func transient(ir checker.InjectionReport) bool {
	return ir.Panicked || (ir.TimedOut && ir.Error == "")
}
