package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
)

// journalVersion is bumped on incompatible format changes.
const journalVersion = 1

// Header is the first line of a checkpoint journal. It pins the journal to
// one campaign: Kind names the producing runner ("symbolic" or "concrete")
// and Fingerprint hashes the campaign spec, so a resume against a different
// program, input, predicate or injection list is rejected instead of
// silently merging unrelated results.
type Header struct {
	Version     int    `json:"symplfied_journal"`
	Kind        string `json:"kind"`
	Fingerprint string `json:"fingerprint"`
}

// entry is one journaled record: a campaign-unique key (the injection's
// canonical rendering) plus the runner-specific payload.
type entry struct {
	Key  string          `json:"key"`
	Data json.RawMessage `json:"data"`
}

// Journal is an append-only JSON-lines checkpoint file. Each completed
// injection is written as one line and flushed immediately, so a killed
// campaign loses at most the injections still in flight. Append is safe for
// concurrent use by campaign workers.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJournal opens (or creates) the journal at path for appending. A new
// file is stamped with the header; an existing file must carry a matching
// header or an error is returned.
func OpenJournal(path, kind, fingerprint string) (*Journal, error) {
	existing, err := readHeader(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("campaign: create journal: %w", err)
		}
		hdr, err := json.Marshal(Header{Version: journalVersion, Kind: kind, Fingerprint: fingerprint})
		if err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, fmt.Errorf("campaign: write journal header: %w", err)
		}
		return &Journal{f: f, path: path}, nil
	case err != nil:
		return nil, err
	}
	if err := existing.check(kind, fingerprint); err != nil {
		return nil, fmt.Errorf("campaign: journal %s: %w", path, err)
	}
	if err := truncateTornTail(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open journal: %w", err)
	}
	return &Journal{f: f, path: path}, nil
}

// truncateTornTail drops a torn final line (a kill mid-append) before the
// journal is reopened for appending, so new entries never concatenate onto
// the fragment and corrupt the file mid-line.
func truncateTornTail(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("campaign: read journal: %w", err)
	}
	if i := bytes.LastIndexByte(data, '\n'); i+1 < len(data) {
		if err := os.Truncate(path, int64(i+1)); err != nil {
			return fmt.Errorf("campaign: truncate torn journal tail: %w", err)
		}
	}
	return nil
}

// check validates a header against the expected campaign identity.
func (h Header) check(kind, fingerprint string) error {
	if h.Version != journalVersion {
		return fmt.Errorf("journal version %d, want %d", h.Version, journalVersion)
	}
	if h.Kind != kind {
		return fmt.Errorf("journal kind %q, want %q", h.Kind, kind)
	}
	if h.Fingerprint != fingerprint {
		return fmt.Errorf("campaign fingerprint mismatch: journal was written by a different campaign spec (journal %s, spec %s)", h.Fingerprint, fingerprint)
	}
	return nil
}

// readHeader reads and decodes the first line of the file at path.
func readHeader(path string) (Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), maxJournalLine)
	if !sc.Scan() {
		return Header{}, fmt.Errorf("campaign: journal %s: empty or unreadable header", path)
	}
	var h Header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return Header{}, fmt.Errorf("campaign: journal %s: bad header: %w", path, err)
	}
	return h, nil
}

// maxJournalLine bounds the header line only; entry lines are read without a
// cap (a distributed task's pooled result can run to gigabytes).
const maxJournalLine = 16 << 20

// Append journals one record under key and flushes it to the file. The write
// is a single Write syscall of one complete line, so concurrent appends from
// campaign workers never interleave partial lines.
func (j *Journal) Append(key string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("campaign: marshal journal entry: %w", err)
	}
	line, err := json.Marshal(entry{Key: key, Data: data})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("campaign: append journal entry: %w", err)
	}
	return nil
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// LoadJournal reads the journal at path and returns its entries keyed by
// injection key (the last entry wins on duplicates). A missing file is not
// an error: it returns an empty map, so "resume" on a fresh campaign starts
// from nothing. A present file must match kind and fingerprint. A torn final
// line — the crash the journal exists to survive — is skipped.
func LoadJournal(path, kind, fingerprint string) (map[string]json.RawMessage, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return map[string]json.RawMessage{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: open journal: %w", err)
	}
	defer f.Close()

	// Entry lines are unbounded (a distributed task's pooled result can run
	// to gigabytes), so read with ReadBytes rather than a capped Scanner.
	r := bufio.NewReaderSize(f, 1<<16)
	hdrLine, rerr := r.ReadBytes('\n')
	if len(bytes.TrimSpace(hdrLine)) == 0 {
		if rerr != nil && !errors.Is(rerr, io.EOF) {
			return nil, fmt.Errorf("campaign: journal %s: %w", path, rerr)
		}
		return nil, fmt.Errorf("campaign: journal %s: empty or unreadable header", path)
	}
	var h Header
	if err := json.Unmarshal(hdrLine, &h); err != nil {
		return nil, fmt.Errorf("campaign: journal %s: bad header: %w", path, err)
	}
	if err := h.check(kind, fingerprint); err != nil {
		return nil, fmt.Errorf("campaign: journal %s: %w", path, err)
	}

	entries := make(map[string]json.RawMessage)
	for {
		line, rerr := r.ReadBytes('\n')
		atEOF := errors.Is(rerr, io.EOF)
		if rerr != nil && !atEOF {
			return nil, fmt.Errorf("campaign: journal %s: %w", path, rerr)
		}
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			// Appends are whole '\n'-terminated lines, so an unterminated
			// final line is the expected torn tail of a killed run and is
			// skipped; a terminated line that fails to decode is corruption.
			torn := atEOF && (len(line) == 0 || line[len(line)-1] != '\n')
			var e entry
			if err := json.Unmarshal(trimmed, &e); err != nil {
				if torn {
					break
				}
				return nil, fmt.Errorf("campaign: journal %s: corrupt entry: %w", path, err)
			}
			entries[e.Key] = e.Data
		}
		if atEOF {
			break
		}
	}
	return entries, nil
}
