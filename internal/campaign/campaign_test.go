package campaign

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"symplfied/internal/checker"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/symexec"
)

// wideProgram builds a straight-line program with n addi instructions
// feeding a final print, so a register-class injection before any of the n
// PCs propagates err to the output. It yields a campaign of n injections
// whose explorations are small and deterministic.
func wideProgram(t *testing.T, n int) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("wide")
	b.Li(1, 0)
	for i := 0; i < n; i++ {
		b.Addi(1, 1, 1)
	}
	b.Print(1)
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// wideSpec returns a spec sweeping err-in-r1 before each addi of a wide
// program: n injections, every one a finding (err reaches the output).
func wideSpec(t *testing.T, n int) checker.Spec {
	prog := wideProgram(t, n)
	injs := make([]faults.Injection, 0, n)
	for pc := 1; pc <= n; pc++ {
		injs = append(injs, faults.Injection{
			Class: faults.ClassRegister,
			PC:    pc,
			Loc:   isa.RegLoc(1),
		})
	}
	exec := symexec.DefaultOptions()
	exec.Watchdog = 10_000
	return checker.Spec{
		Program:       prog,
		Injections:    injs,
		Exec:          exec,
		Predicate:     checker.OutputContainsErr(),
		DiscardStates: true, // journaled findings carry no state; keep runs comparable
	}
}

// TestCheckpointResumeRoundTrip is the acceptance scenario: a campaign over
// 60 injections is killed partway via context cancellation, then resumed
// from its checkpoint file; the final merged report must be identical to an
// uninterrupted run, and no journaled injection may be explored twice.
func TestCheckpointResumeRoundTrip(t *testing.T) {
	const n = 60
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")

	// Reference: uninterrupted run, no checkpointing.
	want, wantStats, err := Run(context.Background(), wideSpec(t, n), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if wantStats.Executed != n || want.Interrupted {
		t.Fatalf("reference run: executed %d, interrupted %v", wantStats.Executed, want.Interrupted)
	}
	if len(want.Findings) != n {
		t.Fatalf("reference run found %d findings, want %d", len(want.Findings), n)
	}

	// Run 1: cancel the campaign once 20 injections have settled.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep1, stats1, err := Run(ctx, wideSpec(t, n), Config{
		Checkpoint: journal,
		OnInjection: func(done, total int) {
			if done >= 20 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Interrupted || !stats1.Interrupted {
		t.Fatal("killed campaign must be marked interrupted")
	}
	if stats1.NotAttempted == 0 {
		t.Fatal("killed campaign should have unattempted injections left")
	}
	if got := rep1.Verdict(); got != checker.VerdictInconclusive && got != checker.VerdictRefuted {
		t.Fatalf("partial report verdict = %s", got)
	}

	// The journal must already hold the settled injections.
	entries, err := LoadJournal(journal, KindSymbolic, Fingerprint(wideSpec(t, n)))
	if err != nil {
		t.Fatal(err)
	}
	journaled := len(entries)
	if journaled == 0 || journaled >= n {
		t.Fatalf("journal holds %d entries after the kill, want a strict partial of %d", journaled, n)
	}

	// Run 2: resume. Journaled injections are skipped, the rest executed.
	rep2, stats2, err := Run(context.Background(), wideSpec(t, n), Config{
		Checkpoint: journal,
		Resume:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Resumed != journaled {
		t.Errorf("resumed %d injections, want %d (the journal's entries)", stats2.Resumed, journaled)
	}
	if stats2.Executed != n-journaled {
		t.Errorf("resume executed %d injections, want %d: a journaled injection was explored twice", stats2.Executed, n-journaled)
	}
	if rep2.Interrupted || stats2.Interrupted {
		t.Error("resumed campaign finished but is marked interrupted")
	}

	// The merged report must match the uninterrupted run exactly.
	if !reflect.DeepEqual(rep2.PerInjection, want.PerInjection) {
		t.Error("resumed per-injection reports differ from the uninterrupted run")
	}
	if rep2.TotalStates != want.TotalStates {
		t.Errorf("resumed TotalStates = %d, uninterrupted = %d", rep2.TotalStates, want.TotalStates)
	}
	if !reflect.DeepEqual(rep2.Outcomes, want.Outcomes) {
		t.Errorf("resumed outcomes %v, uninterrupted %v", rep2.Outcomes, want.Outcomes)
	}
	if len(rep2.Findings) != len(want.Findings) {
		t.Errorf("resumed findings %d, uninterrupted %d", len(rep2.Findings), len(want.Findings))
	}
	if rep2.Verdict() != want.Verdict() {
		t.Errorf("resumed verdict %s, uninterrupted %s", rep2.Verdict(), want.Verdict())
	}
}

// TestResumeCompletedCampaignExecutesNothing proves a finished journal fully
// short-circuits the sweep.
func TestResumeCompletedCampaignExecutesNothing(t *testing.T) {
	const n = 50
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	spec := wideSpec(t, n)

	if _, _, err := Run(context.Background(), spec, Config{Checkpoint: journal}); err != nil {
		t.Fatal(err)
	}
	rep, stats, err := Run(context.Background(), wideSpec(t, n), Config{Checkpoint: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 0 || stats.Resumed != n {
		t.Errorf("executed %d / resumed %d, want 0 / %d", stats.Executed, stats.Resumed, n)
	}
	if len(rep.PerInjection) != n {
		t.Errorf("merged report has %d injection reports, want %d", len(rep.PerInjection), n)
	}
}

// TestFingerprintMismatchRejected proves a journal cannot be resumed against
// a different campaign spec.
func TestFingerprintMismatchRejected(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	if _, _, err := Run(context.Background(), wideSpec(t, 50), Config{Checkpoint: journal}); err != nil {
		t.Fatal(err)
	}
	// Different program size => different fingerprint.
	_, _, err := Run(context.Background(), wideSpec(t, 51), Config{Checkpoint: journal, Resume: true})
	if err == nil {
		t.Fatal("resuming with a different spec must fail the fingerprint check")
	}
}

// TestPanickingInjectionIsIsolated proves a panic inside one injection's
// exploration (here: a panicking user predicate) is recorded on that
// injection's report while the rest of the campaign completes, and the
// verdict refuses to claim proof.
func TestPanickingInjectionIsIsolated(t *testing.T) {
	spec := wideSpec(t, 10)
	base := spec.Predicate.Match
	var calls int32
	spec.Predicate.Name = "panics on third terminal classification"
	spec.Predicate.Match = func(s *symexec.State) bool {
		if atomic.AddInt32(&calls, 1) == 3 {
			panic("synthetic predicate failure")
		}
		return base(s)
	}

	rep, stats, err := Run(context.Background(), spec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Panicked != 1 || rep.Panics != 1 {
		t.Fatalf("panicked = %d (report %d), want 1", stats.Panicked, rep.Panics)
	}
	if len(rep.PerInjection) != 10 {
		t.Fatalf("campaign aborted: %d of 10 injections reported", len(rep.PerInjection))
	}
	var found bool
	for _, ir := range rep.PerInjection {
		if ir.Panicked {
			found = true
			if ir.PanicValue != "synthetic predicate failure" {
				t.Errorf("panic value = %q", ir.PanicValue)
			}
		}
	}
	if !found {
		t.Error("no per-injection report marked Panicked")
	}
	if rep.Verdict() == checker.VerdictProven {
		t.Error("a campaign with an isolated panic must not claim proof")
	}
}

// TestTransientPanicRecoveredByRetry proves the graceful-degradation retry:
// a predicate that panics exactly once makes the first attempt fail and the
// degraded retry succeed, leaving a clean report.
func TestTransientPanicRecoveredByRetry(t *testing.T) {
	spec := wideSpec(t, 5)
	base := spec.Predicate.Match
	var bombs int32 = 1
	spec.Predicate.Match = func(s *symexec.State) bool {
		if atomic.AddInt32(&bombs, -1) == 0 {
			panic("transient fault")
		}
		return base(s)
	}

	rep, stats, err := Run(context.Background(), spec, Config{Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retried == 0 {
		t.Error("no retry was attempted")
	}
	if stats.Panicked != 0 || rep.Panics != 0 {
		t.Errorf("panic survived retries: stats %d, report %d", stats.Panicked, rep.Panics)
	}
	if len(rep.PerInjection) != 5 {
		t.Errorf("%d of 5 injections reported", len(rep.PerInjection))
	}
}

// TestParallelWorkersMergeInSpecOrder proves the merged report is ordered by
// the spec regardless of worker interleaving, and is identical to the
// sequential run. Run with -race this also exercises the journal and stats
// locking.
func TestParallelWorkersMergeInSpecOrder(t *testing.T) {
	const n = 60
	want, _, err := Run(context.Background(), wideSpec(t, n), Config{})
	if err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	got, stats, err := Run(context.Background(), wideSpec(t, n), Config{
		Checkpoint: journal,
		Workers:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != n {
		t.Fatalf("executed %d, want %d", stats.Executed, n)
	}
	if !reflect.DeepEqual(got.PerInjection, want.PerInjection) {
		t.Error("parallel merged report differs from sequential run")
	}
}

// TestTornJournalLineIsTolerated proves a crash mid-append (a torn final
// line) does not poison the resume.
func TestTornJournalLineIsTolerated(t *testing.T) {
	const n = 50
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	spec := wideSpec(t, n)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, _, err := Run(ctx, spec, Config{
		Checkpoint: journal,
		OnInjection: func(done, total int) {
			if done >= 10 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Simulate the kill landing mid-write.
	f, err := os.OpenFile(journal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rep, stats, err := Run(context.Background(), wideSpec(t, n), Config{Checkpoint: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed == 0 {
		t.Error("torn line discarded the whole journal")
	}
	if stats.Resumed+stats.Executed != n || rep.Interrupted {
		t.Errorf("resumed %d + executed %d != %d (interrupted %v)", stats.Resumed, stats.Executed, n, rep.Interrupted)
	}

	// The torn fragment must have been truncated, not appended onto: the
	// journal stays loadable and now covers the whole campaign.
	entries, err := LoadJournal(journal, KindSymbolic, Fingerprint(wideSpec(t, n)))
	if err != nil {
		t.Fatalf("journal unreadable after resume over a torn tail: %v", err)
	}
	if len(entries) != n {
		t.Errorf("journal holds %d entries after full resume, want %d", len(entries), n)
	}
}
