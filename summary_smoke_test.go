package symplfied_test

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"symplfied/internal/apps/tcas"
	"symplfied/internal/checker"
	"symplfied/internal/faults"
	"symplfied/internal/isa"
	"symplfied/internal/query"
	"symplfied/internal/summary"
)

// TestSummarySmokeTCAS is the compositional-summary acceptance gate, run
// with the SYMPLFIED_CHECK_SUMMARIES assertion armed throughout (every
// reused summarized report is re-explored and compared):
//
//  1. cold: a summarized tcas sweep over a disk-backed cache computes a
//     summary for every discovered function and hits nothing;
//  2. warm: an unchanged re-run over a fresh cache on the same directory
//     hits the cache for every function and computes nothing, and its
//     report is byte-identical to a plain (unsummarized) sweep's apart
//     from the Summarized markers;
//  3. incremental: after an in-place one-instruction mutation inside one
//     function, only that function and its transitive callers are
//     re-analyzed — every other function is a cache hit — and the
//     findings are byte-identical to a from-scratch sweep of the mutated
//     program.
//
// Set SUMMARY_CACHE_STATS to a path to dump the cache statistics as JSON
// (the CI summary-smoke job uploads it as an artifact).
func TestSummarySmokeTCAS(t *testing.T) {
	prog := tcas.Program()
	input := tcas.UpwardInput().Slice()
	defer checker.SetCheckSummaries(true)()

	limit := 120
	if testing.Short() {
		limit = 40
	}
	baseSpec := func(prog *isa.Program) checker.Spec {
		t.Helper()
		q := query.Query{Class: faults.ClassRegister, Goal: query.GoalErrOutput}
		spec, err := q.Build(prog, nil, input)
		if err != nil {
			t.Fatal(err)
		}
		spec.StateBudget = 2_000
		spec.DiscardStates = true
		// Sweep a deterministic sample of the exhaustive register space
		// (every register at every pc, not just activated reads): that is
		// the campaign where benign elision matters, and the sample spans
		// every function so the incremental assertions exercise real reuse.
		all := faults.RegisterInjections(prog, false)
		step := len(all)/limit + 1
		spec.Injections = spec.Injections[:0]
		for i := 0; i < len(all); i += step {
			spec.Injections = append(spec.Injections, all[i])
		}
		return spec
	}
	sweep := func(spec checker.Spec) *checker.Report {
		t.Helper()
		rep, err := checker.RunCtx(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	// comparable strips the spec (it carries the predicate closure) and the
	// Summarized markers — the one legitimate difference between a
	// summarized report and a plain one.
	comparable := func(rep *checker.Report) string {
		t.Helper()
		cp := *rep
		cp.Spec = nil
		cp.PerInjection = append([]checker.InjectionReport(nil), rep.PerInjection...)
		for i := range cp.PerInjection {
			cp.PerInjection[i].Summarized = false
		}
		cp.SummarizedInjections = 0
		b, err := json.Marshal(cp)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	dir := t.TempDir()
	openCache := func() *summary.Cache {
		t.Helper()
		store, err := summary.OpenDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		return summary.NewCache(0, store)
	}

	// Plain from-scratch sweep: the reference verdicts.
	plain := sweep(baseSpec(prog))

	// Cold summarized sweep: every function computed, nothing hit.
	coldSpec := baseSpec(prog)
	coldSpec.UseSummaries = true
	coldSpec.SummaryCache = openCache()
	coldCtx := coldSpec.EnsureSummaries()
	cold := sweep(coldSpec)
	coldStats := coldCtx.BuildStats()
	if len(coldStats.Hits) != 0 {
		t.Errorf("cold build hit the cache for %v; want none", coldStats.Hits)
	}
	if len(coldStats.Computed) != coldStats.Functions {
		t.Errorf("cold build computed %d of %d functions", len(coldStats.Computed), coldStats.Functions)
	}
	if got, want := comparable(cold), comparable(plain); got != want {
		t.Errorf("cold summarized report diverges from plain report:\nplain:      %s\nsummarized: %s", want, got)
	}
	if cold.SummarizedInjections == 0 {
		t.Error("cold summarized sweep elided nothing on tcas")
	}

	// Warm re-run over a fresh cache on the same directory: all hits.
	warmSpec := baseSpec(prog)
	warmSpec.UseSummaries = true
	warmSpec.SummaryCache = openCache()
	warmCtx := warmSpec.EnsureSummaries()
	warm := sweep(warmSpec)
	warmStats := warmCtx.BuildStats()
	if len(warmStats.Computed) != 0 {
		t.Errorf("warm build recomputed %v; want pure cache hits", warmStats.Computed)
	}
	if len(warmStats.Hits) != warmStats.Functions {
		t.Errorf("warm build hit %d of %d functions", len(warmStats.Hits), warmStats.Functions)
	}
	if got, want := comparable(warm), comparable(plain); got != want {
		t.Errorf("warm summarized report diverges from plain report")
	}

	// In-place mutation: bump one immediate inside one function that has
	// callers, preserving every pc. Only that function and its transitive
	// callers may re-analyze.
	fs := warmCtx.Set().Funcs
	target, targetPC := -1, -1
	for i, f := range fs.Funcs {
		if f.Entry == 0 || f.Opaque || len(fs.Callers(i)) == 0 {
			continue
		}
		for _, pc := range f.Body {
			if op := prog.At(pc).Op; op == isa.OpAddi || op == isa.OpLi {
				target, targetPC = i, pc
				break
			}
		}
		if target >= 0 {
			break
		}
	}
	if target < 0 {
		t.Fatal("no mutable called function found in tcas")
	}
	instrs := append([]isa.Instr(nil), prog.Instrs...)
	instrs[targetPC].Imm++
	mutated, err := isa.NewProgram(prog.Name, instrs, prog.Labels)
	if err != nil {
		t.Fatal(err)
	}
	// Expected recompute set: the mutated function plus its transitive
	// callers, by name, from the unmutated call graph (the partition is
	// pc-identical after an in-place mutation).
	want := map[string]bool{}
	var mark func(i int)
	mark = func(i int) {
		if want[fs.Funcs[i].Name] {
			return
		}
		want[fs.Funcs[i].Name] = true
		for _, c := range fs.Callers(i) {
			mark(c.Index)
		}
	}
	mark(target)

	mutSpec := baseSpec(mutated)
	mutSpec.UseSummaries = true
	mutSpec.SummaryCache = openCache()
	mutCtx := mutSpec.EnsureSummaries()
	mut := sweep(mutSpec)
	mutStats := mutCtx.BuildStats()
	got := map[string]bool{}
	for _, n := range mutStats.Computed {
		got[n] = true
	}
	if len(got) != len(want) {
		t.Errorf("mutated build recomputed %v, want exactly %v (function %s + transitive callers)",
			mutStats.Computed, keys(want), fs.Funcs[target].Name)
	} else {
		for n := range want {
			if !got[n] {
				t.Errorf("mutated build did not recompute %s (recomputed %v)", n, mutStats.Computed)
			}
		}
	}
	if len(mutStats.Hits) != mutStats.Functions-len(want) {
		t.Errorf("mutated build hit %d functions, want %d (all but the invalidated %d)",
			len(mutStats.Hits), mutStats.Functions-len(want), len(want))
	}

	// The mutated warm sweep must agree byte-for-byte with a from-scratch
	// plain sweep of the mutated program.
	mutPlain := sweep(baseSpec(mutated))
	if got, want := comparable(mut), comparable(mutPlain); got != want {
		t.Errorf("mutated summarized report diverges from its from-scratch report")
	}

	if path := os.Getenv("SUMMARY_CACHE_STATS"); path != "" {
		artifact := struct {
			Cold, Warm, Mutated  summary.BuildStats
			MutatedFunction      string
			Injections           int
			SummarizedInjections int
		}{coldStats, warmStats, mutStats, fs.Funcs[target].Name, len(coldSpec.Injections), cold.SummarizedInjections}
		b, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("cache stats written to %s", path)
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
