package symplfied

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryPackageHasDocComment walks every Go package in the module and
// fails if any lacks a package doc comment. The package comments double as
// the map from code to paper sections (each internal package states its
// paper counterpart), so a missing one is a documentation regression, not a
// style nit. CI runs this test on every push.
func TestEveryPackageHasDocComment(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		fset := token.NewFileSet()
		pkgs, perr := parser.ParseDir(fset, path, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if perr != nil {
			t.Errorf("%s: %v", path, perr)
			return nil
		}
		for pkgName, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				rel, _ := filepath.Rel(root, path)
				t.Errorf("package %s (%s) has no package doc comment", pkgName, rel)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
