package symplfied

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryPackageHasDocComment walks every Go package in the module and
// fails if any lacks a package doc comment. The package comments double as
// the map from code to paper sections (each internal package states its
// paper counterpart), so a missing one is a documentation regression, not a
// style nit. CI runs this test on every push.
func TestEveryPackageHasDocComment(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		fset := token.NewFileSet()
		pkgs, perr := parser.ParseDir(fset, path, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if perr != nil {
			t.Errorf("%s: %v", path, perr)
			return nil
		}
		for pkgName, pkg := range pkgs {
			var doc string
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					doc = f.Doc.Text()
					break
				}
			}
			rel, _ := filepath.Rel(root, path)
			if doc == "" {
				t.Errorf("package %s (%s) has no package doc comment", pkgName, rel)
				continue
			}
			if min, ok := minDocLines[filepath.ToSlash(rel)]; ok {
				lines := 0
				for _, l := range strings.Split(doc, "\n") {
					if strings.TrimSpace(l) != "" {
						lines++
					}
				}
				if lines < min {
					t.Errorf("package %s (%s): package doc is a %d-line stub; these core packages document their invariants (interning, Key/Hash64 stability, fork semantics) in the package comment — want >= %d non-empty lines",
						pkgName, rel, lines, min)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// minDocLines pins a floor under the package docs that carry load-bearing
// contracts: internal/symbolic's interning invariant (pointer equality ⇔
// structural equality, frozen-after-Intern lifecycle) and internal/symexec's
// fork semantics live in the package comments, and a regression to a
// one-line stub would silently drop them.
var minDocLines = map[string]int{
	"internal/symbolic": 6,
	"internal/symexec":  6,
}
