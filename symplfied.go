// Package symplfied is a Go implementation of SymPLFIED — the Symbolic
// Program-Level Fault Injection and Error Detection framework of
// Pattabiraman, Nakka, Kalbarczyk and Iyer (DSN 2008).
//
// SymPLFIED takes a program in a generic assembly language, optionally
// protected with error detectors, and a class of transient hardware errors,
// and exhaustively enumerates the errors in that class that evade the
// detectors and lead to program failure (crash, hang, or incorrect output).
// Erroneous values are abstracted by a single symbolic value err; a
// constraint solver prunes infeasible forks; bounded model checking explores
// every nondeterministic resolution.
//
// The API is context-first: every engine entry point is a Ctx function that
// honors cancellation and deadlines by returning the partial results
// gathered so far (marked Interrupted) instead of discarding completed work.
// The un-suffixed names (Search, Study, Campaign, ...) are one-line
// conveniences over their Ctx twins with an un-cancellable context. A
// typical workflow:
//
//	u, _ := symplfied.Assemble("factorial", src)       // or TranslateMIPS
//	res := symplfied.Execute(u.Program, []int64{5}, symplfied.ExecConfig{})
//
//	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
//	defer cancel()
//	rep, _ := symplfied.SearchCtx(ctx, symplfied.SearchSpec{ // symbolic search
//	    Unit:  u,
//	    Input: []int64{5},
//	    Class: symplfied.ClassRegister,
//	    Goal:  symplfied.GoalIncorrectOutput,
//	    Limits: symplfied.Limits{StateBudget: 50_000},
//	    Parallelism: 0, // 0: all cores; the merged report is identical either way
//	})
//	camp, _ := symplfied.CampaignCtx(ctx, symplfied.CampaignSpec{...},
//	    symplfied.CampaignResilience{}) // concrete baseline
//
// Subsystem packages under internal/ implement the machine model, error
// model, detector model, constraint solver, model checker, cluster harness,
// MIPS front end, and the paper's benchmark applications.
package symplfied

import (
	"context"
	"fmt"
	"time"

	"symplfied/internal/asm"
	"symplfied/internal/campaign"
	"symplfied/internal/checker"
	"symplfied/internal/cluster"
	"symplfied/internal/crossval"
	"symplfied/internal/detector"
	"symplfied/internal/faults"
	"symplfied/internal/harden"
	"symplfied/internal/isa"
	"symplfied/internal/machine"
	"symplfied/internal/mips"
	"symplfied/internal/query"
	"symplfied/internal/simplescalar"
	"symplfied/internal/summary"
	"symplfied/internal/symexec"
)

// Core vocabulary, re-exported.
type (
	// Program is an assembled program in the generic assembly language.
	Program = isa.Program
	// Instr is one decoded instruction.
	Instr = isa.Instr
	// Reg names a general-purpose register.
	Reg = isa.Reg
	// Value is a machine word: a concrete integer or the symbolic err.
	Value = isa.Value
	// Loc names a register or memory word.
	Loc = isa.Loc
	// Exception records an abnormal termination.
	Exception = isa.Exception
	// Detector is one error detector (det(ID, loc, cmp, expr)).
	Detector = detector.Detector
	// DetectorTable holds a program's detectors.
	DetectorTable = detector.Table
	// Unit is an assembled program plus its detectors.
	Unit = asm.Unit
	// Injection is one injectable fault.
	Injection = faults.Injection
	// ErrorClass selects a fault class.
	ErrorClass = faults.Class
	// Goal selects what a search looks for.
	Goal = query.Goal
	// Finding is a terminal state matching a search goal.
	Finding = checker.Finding
	// Report aggregates a sequential search.
	Report = checker.Report
	// State is a symbolic machine state (findings carry their final state,
	// including the decision trace and constraint store).
	State = symexec.State
	// Outcome classifies a terminated execution.
	Outcome = symexec.Outcome
	// TaskReport is the result of one cluster task.
	TaskReport = cluster.TaskReport
	// StudySummary pools cluster task reports.
	StudySummary = cluster.Summary
	// CampaignReport tallies a concrete fault-injection campaign.
	CampaignReport = simplescalar.Report
	// Component names a code region for compositional analysis.
	Component = checker.Component
	// ComponentProof records a component's isolated verdict.
	ComponentProof = checker.ComponentProof
	// Verdict is the framework's overall answer: proven resilient,
	// refuted (with findings), or inconclusive.
	Verdict = checker.Verdict
)

// Verdicts.
const (
	VerdictProven       = checker.VerdictProven
	VerdictRefuted      = checker.VerdictRefuted
	VerdictInconclusive = checker.VerdictInconclusive
)

// Error classes (paper Sections 3.3 and 5.2).
const (
	ClassRegister = faults.ClassRegister
	ClassMemory   = faults.ClassMemory
	ClassControl  = faults.ClassControl
	ClassDecode   = faults.ClassDecode
)

// Search goals (predefined queries, paper Section 5's query generator).
const (
	GoalErrOutput       = query.GoalErrOutput
	GoalIncorrectOutput = query.GoalIncorrectOutput
	GoalWrongAdvisory   = query.GoalWrongAdvisory
	GoalCrash           = query.GoalCrash
	GoalHang            = query.GoalHang
	GoalDetected        = query.GoalDetected
)

// Outcomes.
const (
	OutcomeNormal   = symexec.OutcomeNormal
	OutcomeCrash    = symexec.OutcomeCrash
	OutcomeHang     = symexec.OutcomeHang
	OutcomeDetected = symexec.OutcomeDetected
)

// Assemble parses a program in SymPLFIED's assembly syntax (see package
// internal/asm for the grammar), returning the program and any detector
// specifications found in the source.
func Assemble(name, src string) (*Unit, error) { return asm.Parse(name, src) }

// ParseDetector parses a det(ID, loc, cmp, expr) specification.
func ParseDetector(spec string) (*Detector, error) { return detector.Parse(spec) }

// TranslateMIPS translates MIPS-dialect assembly (see package internal/mips
// for the supported subset) into a program.
func TranslateMIPS(name, src string) (*Program, error) { return mips.Translate(name, src) }

// ExecConfig configures a concrete execution.
type ExecConfig struct {
	// Watchdog bounds executed instructions (0: a conservative default).
	Watchdog int
	// Detectors supplies CHECK targets.
	Detectors *DetectorTable
}

// ExecResult summarizes a concrete execution.
type ExecResult struct {
	// Halted is true for a normal termination.
	Halted bool
	// Exception is the terminating exception for abnormal ones.
	Exception *Exception
	// Output is the rendered output stream.
	Output string
	// Values are the printed values.
	Values []Value
	// Steps counts executed instructions.
	Steps int
}

// Execute runs a program concretely on the machine model.
func Execute(prog *Program, input []int64, cfg ExecConfig) ExecResult {
	m := machine.New(prog, input, machine.Options{
		Watchdog:  cfg.Watchdog,
		Detectors: cfg.Detectors,
	})
	res := m.Run()
	return ExecResult{
		Halted:    res.Status == machine.StatusHalted,
		Exception: res.Exception,
		Output:    machine.RenderOutput(res.Output),
		Values:    machine.OutputValues(res.Output),
		Steps:     res.Steps,
	}
}

// Limits gathers the budget knobs shared by every search-shaped entry point:
// SearchSpec embeds it for the per-injection limits of a flat search, and
// StudyConfig embeds it for the per-task limits of a decomposed study. The
// fields promote, so the historical flat names keep working as aliases —
// s.StateBudget reads and writes s.Limits.StateBudget.
type Limits struct {
	// Watchdog bounds each symbolic path in executed instructions
	// (0: default). It is the hang detector: a path that exceeds the
	// watchdog terminates with OutcomeHang.
	Watchdog int
	// StateBudget bounds explored states — per injection under SearchSpec,
	// per task under StudyConfig (0: defaults; see checker.DefaultStateBudget
	// and cluster.DefaultTaskStateBudget).
	StateBudget int
	// MaxFindings caps collected findings per injection (SearchSpec) or per
	// task (StudyConfig); 0 means unlimited. The cap truncates what is
	// recorded, never what is explored, so tallies and outcomes are
	// unaffected.
	MaxFindings int
	// PerInjectionTimeout bounds the wall clock spent on any single
	// injection, the analogue of the paper's per-task cluster allotment
	// alongside the deterministic state budget (0: none). An expired
	// deadline marks that injection's report TimedOut and downgrades an
	// otherwise-empty verdict to inconclusive.
	PerInjectionTimeout time.Duration
}

// SearchSpec describes a symbolic fault-injection search.
type SearchSpec struct {
	// Unit is the program under analysis (with its detectors).
	Unit *Unit
	// Input is the program input.
	Input []int64
	// Class selects the fault class to enumerate; ignored when Injections
	// is non-empty.
	Class ErrorClass
	// Injections overrides the enumerated fault class with an explicit set.
	Injections []Injection
	// Goal selects the search predicate.
	Goal Goal
	// Limits holds the per-injection budget knobs (Watchdog, StateBudget,
	// MaxFindings, PerInjectionTimeout). The fields promote: the flat
	// selectors predating the Limits extraction (s.Watchdog, s.StateBudget,
	// ...) are aliases for the embedded fields and keep working unchanged.
	Limits
	// Parallelism fans the injection sweep across a worker pool: 0 selects
	// all cores (GOMAXPROCS), 1 forces the sequential sweep. The merged
	// report of an uninterrupted run is byte-identical at any parallelism;
	// like all operational knobs it never enters the campaign fingerprint.
	Parallelism int
	// DisableAffineSolver reverts to the paper's coarser constraint model
	// (every propagated err loses lineage) for ablation.
	DisableAffineSolver bool
	// Permanent turns every register/memory injection into a stuck-at
	// fault (the paper's future-work extension: permanent errors).
	Permanent bool
	// DiscardStates drops terminal symbolic states from findings once their
	// summaries are captured, bounding memory on huge campaigns. Findings
	// then have State == nil; Describe still works.
	DiscardStates bool
	// PruneDeadInjections elides explorations a liveness proof shows are
	// redundant: a transient register error injected into a register that
	// every path overwrites before reading cannot propagate, so one
	// representative exploration per breakpoint stands in for all dead
	// registers there (each such report is marked Pruned). Verdicts are
	// identical to an unpruned run's; like Parallelism this is an
	// operational knob, excluded from the campaign fingerprint. See
	// internal/analysis, and SYMPLFIED_CHECK_PRUNING to audit the proof on
	// a live run.
	PruneDeadInjections bool
	// UseSummaries elides explorations a compositional fault summary proves
	// benign: per-function taint summaries, composed across call sites and
	// return continuations, show the injected err reaches no output, no
	// detector read, and no control decision (each such report is marked
	// Summarized). A strictly larger benign class than PruneDeadInjections
	// — taint may die later, or in a callee — at the cost of the
	// calling-convention assumption documented on summary.Partition.
	// Operational like Parallelism: excluded from the campaign fingerprint.
	// See internal/summary, and SYMPLFIED_CHECK_SUMMARIES to audit the
	// proof on a live run.
	UseSummaries bool
	// MergeStates explores each injection with post-dominator state merging
	// and cycle acceleration (checker.Spec.MergeStates): states that rejoin
	// at control-flow merge points with identical skeletons are stepped once
	// for all of them, and deterministic or affine watchdog-bound loops are
	// fast-forwarded instead of stepped lap by lap. Verdicts, outcome
	// tallies and findings are identical to the plain exploration's; only
	// StatesExplored (physical state observations) drops. Operational like
	// Parallelism: excluded from the campaign fingerprint. See
	// internal/checker's merge.go, and SYMPLFIED_CHECK_MERGING to audit the
	// equivalence on a live run.
	MergeStates bool
	// SummaryCache, when non-nil with UseSummaries, caches per-function
	// summaries under content-addressed keys so re-analysis after an edit
	// recomputes only the changed functions and their transitive callers.
	// Back it with OpenSummaryDiskStore to persist across processes.
	SummaryCache *SummaryCache
}

func (s SearchSpec) build() (checker.Spec, error) {
	if s.Unit == nil || s.Unit.Program == nil {
		return checker.Spec{}, fmt.Errorf("symplfied: SearchSpec.Unit is required")
	}
	exec := symexec.DefaultOptions()
	if s.Watchdog > 0 {
		exec.Watchdog = s.Watchdog
	}
	exec.AffineTracking = !s.DisableAffineSolver
	q := query.Query{Class: s.Class, Goal: s.Goal, Exec: exec}
	spec, err := q.Build(s.Unit.Program, s.Unit.Detectors, s.Input)
	if err != nil {
		return checker.Spec{}, err
	}
	if len(s.Injections) > 0 {
		spec.Injections = s.Injections
	}
	if s.Permanent {
		spec.Injections = faults.PermanentVariant(spec.Injections)
	}
	spec.StateBudget = s.StateBudget
	spec.MaxFindings = s.MaxFindings
	spec.PerInjectionTimeout = s.PerInjectionTimeout
	spec.Parallelism = s.Parallelism
	spec.DiscardStates = s.DiscardStates
	spec.PruneDeadInjections = s.PruneDeadInjections
	spec.UseSummaries = s.UseSummaries
	spec.SummaryCache = s.SummaryCache
	spec.MergeStates = s.MergeStates
	return spec, nil
}

// CheckerSpec lowers the search description to the internal checker spec.
// The distributed harness (internal/dist) lowers the same declarative spec
// document through this single path on both the coordinator and every
// worker, so all parties provably build the identical search — the campaign
// fingerprint (internal/campaign.Fingerprint) then verifies the agreement.
func (s SearchSpec) CheckerSpec() (checker.Spec, error) { return s.build() }

// Search is SearchCtx with an un-cancellable context.
func Search(s SearchSpec) (*Report, error) { return SearchCtx(context.Background(), s) }

// SearchCtx runs a symbolic fault-injection search and returns the checker
// report: every enumerated error in the class that satisfies the goal, with
// decision traces and derived constraints. The sweep fans across
// s.Parallelism cores (0: all); the merged report is deterministic
// regardless. Cancellation (or an expired deadline) returns the partial
// report gathered so far, marked Interrupted, instead of discarding
// completed work.
func SearchCtx(ctx context.Context, s SearchSpec) (*Report, error) {
	spec, err := s.build()
	if err != nil {
		return nil, err
	}
	return checker.RunCtx(ctx, spec)
}

// RunnerConfig configures the resilient campaign runner (SearchResilient):
// checkpoint journaling, resume, transient-failure retries with graceful
// degradation, and worker-pool parallelism.
type RunnerConfig = campaign.Config

// RunnerStats reports what the resilient runner did: injections resumed from
// the journal vs executed, retries, isolated panics, deadline expiries.
type RunnerStats = campaign.Stats

// SearchResilient runs a symbolic search through the checkpointing campaign
// runner: completed injections are journaled as they finish, a killed run
// resumes from the journal (skipping already-explored injections after a
// spec-fingerprint check), injections that panic or exceed the per-injection
// deadline are retried with reduced budgets, and the merged report equals an
// uninterrupted run's. See internal/campaign.
func SearchResilient(ctx context.Context, s SearchSpec, cfg RunnerConfig) (*Report, RunnerStats, error) {
	spec, err := s.build()
	if err != nil {
		return nil, RunnerStats{}, err
	}
	return campaign.Run(ctx, spec, cfg)
}

// StudyConfig configures a decomposed (cluster-style) search, the paper's
// Section 6 experiment harness.
type StudyConfig struct {
	// Tasks is the decomposition width (paper: 150 for tcas, 312 for
	// replace).
	Tasks int
	// Limits holds the per-task budget knobs under their shared names:
	// StateBudget bounds each task (the analogue of the paper's 30-minute
	// allotment; 0 selects a default) and MaxFindings caps findings per task
	// (paper: 10). Watchdog and PerInjectionTimeout, when set, override the
	// SearchSpec's for the study.
	Limits
	// TaskStateBudget is the historical alias for Limits.StateBudget; when
	// both are set the alias wins.
	TaskStateBudget int
	// MaxFindingsPerTask is the historical alias for Limits.MaxFindings;
	// when both are set the alias wins.
	MaxFindingsPerTask int
	// Workers sizes the task pool (0: GOMAXPROCS).
	Workers int
	// Parallelism fans each task's own injection sweep across cores
	// (checker.Spec.Parallelism semantics). It only takes effect when the
	// task pool is not already saturating the machine — i.e. a single-task
	// study or Workers: 1 — since cluster.RunCtx keeps a multi-task pool
	// from oversubscribing the cores.
	Parallelism int
	// PruneDeadInjections enables the liveness-based pruning of
	// SearchSpec.PruneDeadInjections for the whole study: one shared proof
	// context spans every task, so a breakpoint's representative exploration
	// is reused across task boundaries. Task reports and the pooled summary
	// are identical to the unpruned study's apart from the Pruned markers.
	PruneDeadInjections bool
	// UseSummaries enables SearchSpec.UseSummaries for the whole study: one
	// shared summary set and representative memo span every task, so a
	// benign site's exploration is reused across task boundaries.
	UseSummaries bool
	// MergeStates enables SearchSpec.MergeStates for the whole study: one
	// shared control-flow analysis spans every task, and each task's
	// injections are explored with post-dominator state merging and cycle
	// acceleration. Task reports and the pooled summary are identical to the
	// plain study's apart from the Merged markers and the lower state
	// counts.
	MergeStates bool
	// SummaryCache backs the study's summary build (see
	// SearchSpec.SummaryCache).
	SummaryCache *SummaryCache
}

// Study is StudyCtx with an un-cancellable context.
func Study(s SearchSpec, cfg StudyConfig) ([]TaskReport, StudySummary, error) {
	return StudyCtx(context.Background(), s, cfg)
}

// StudyCtx runs a symbolic search decomposed into independent tasks over a
// worker pool and returns the per-task reports plus their pooled summary.
// Cancellation propagates to every worker; the pooled summary covers the
// partial results, with cut-short tasks marked Interrupted, rather than
// returning nothing.
func StudyCtx(ctx context.Context, s SearchSpec, cfg StudyConfig) ([]TaskReport, StudySummary, error) {
	spec, err := s.build()
	if err != nil {
		return nil, StudySummary{}, err
	}
	if cfg.Limits.Watchdog > 0 {
		spec.Exec.Watchdog = cfg.Limits.Watchdog
	}
	if cfg.Limits.PerInjectionTimeout > 0 {
		spec.PerInjectionTimeout = cfg.Limits.PerInjectionTimeout
	}
	if cfg.Parallelism != 0 {
		spec.Parallelism = cfg.Parallelism
	}
	if cfg.PruneDeadInjections {
		spec.PruneDeadInjections = true
	}
	if cfg.UseSummaries {
		spec.UseSummaries = true
	}
	if cfg.MergeStates {
		spec.MergeStates = true
	}
	if cfg.SummaryCache != nil {
		spec.SummaryCache = cfg.SummaryCache
	}
	budget := cfg.TaskStateBudget
	if budget == 0 {
		budget = cfg.Limits.StateBudget
	}
	findings := cfg.MaxFindingsPerTask
	if findings == 0 {
		findings = cfg.Limits.MaxFindings
	}
	tasks := cluster.Split(spec.Injections, cfg.Tasks)
	reports := cluster.RunCtx(ctx, spec, tasks, cluster.Config{
		Workers:            cfg.Workers,
		TaskStateBudget:    budget,
		MaxFindingsPerTask: findings,
	})
	return reports, cluster.Summarize(reports), nil
}

// SummaryCache is the content-addressed LRU cache of per-function fault
// summaries (see internal/summary). A cache is safe for concurrent use and
// may be shared across searches, studies, and campaign resumes; keys are
// canonical hashes of function bodies plus the detector lines they check,
// so entries for edited code become unreachable rather than stale.
type SummaryCache = summary.Cache

// SummaryStore is the persistence interface behind a SummaryCache.
type SummaryStore = summary.Store

// NewSummaryCache builds a summary cache bounded to capacity entries
// (0: a default), optionally backed by a store (nil: memory only).
func NewSummaryCache(capacity int, store SummaryStore) *SummaryCache {
	return summary.NewCache(capacity, store)
}

// OpenSummaryDiskStore opens (creating if needed) an append-only JSONL
// summary store under dir, giving SummaryCache persistence across
// processes: a warm re-analysis after an edit recomputes only the changed
// functions and their transitive callers.
func OpenSummaryDiskStore(dir string) (*summary.DiskStore, error) {
	return summary.OpenDiskStore(dir)
}

// SearchGraph is the explored search graph of one injection (paper
// Section 5.4's "print out the search graph" facility), renderable as
// Graphviz DOT.
type SearchGraph = checker.Graph

// ExploreSearchGraph is ExploreSearchGraphCtx with an un-cancellable context.
func ExploreSearchGraph(s SearchSpec, inj Injection, maxNodes int) (*SearchGraph, error) {
	return ExploreSearchGraphCtx(context.Background(), s, inj, maxNodes)
}

// ExploreSearchGraphCtx explores one injection breadth-first, recording
// every state and its parent, up to maxNodes (0: a default bound).
// Cancellation returns the partial graph marked Truncated.
func ExploreSearchGraphCtx(ctx context.Context, s SearchSpec, inj Injection, maxNodes int) (*SearchGraph, error) {
	spec, err := s.build()
	if err != nil {
		return nil, err
	}
	return checker.ExploreGraphCtx(ctx, spec, inj, maxNodes)
}

// SearchComposed is SearchComposedCtx with an un-cancellable context.
func SearchComposed(s SearchSpec, components []Component) (*Report, []ComponentProof, error) {
	return SearchComposedCtx(context.Background(), s, components)
}

// SearchComposedCtx runs the paper's hierarchical analysis (Section 3.4):
// each component is proved in isolation; injections inside proven components
// are pruned from the whole-program search. Cancellation interrupts the
// running search; an interrupted component proof is inconclusive and never
// prunes injections it did not fully cover.
func SearchComposedCtx(ctx context.Context, s SearchSpec, components []Component) (*Report, []ComponentProof, error) {
	spec, err := s.build()
	if err != nil {
		return nil, nil, err
	}
	return checker.RunComposedCtx(ctx, spec, components)
}

// EnumerateInjections lists the injections of a class over a program with
// the paper's activation policy.
func EnumerateInjections(class ErrorClass, prog *Program) []Injection {
	return faults.ForClass(class, prog)
}

// CampaignSpec describes a concrete (SimpleScalar-style) fault-injection
// campaign, the paper's baseline.
type CampaignSpec struct {
	Unit  *Unit
	Input []int64
	// Faults is the campaign size (0: the full site cross product).
	Faults int
	// Seed drives random value selection (deterministic).
	Seed int64
	// RandomPerReg is the number of random values per site on top of the
	// three extremes (0: 3, the paper's choice).
	RandomPerReg int
	// Watchdog bounds each run.
	Watchdog int
	// AllowedOutputs classifies normal runs by their single printed value
	// when it is among these (e.g. 0, 1, 2 for tcas); others are "other".
	AllowedOutputs []int64
}

// Campaign is CampaignCtx with an un-cancellable context and no
// checkpointing.
func Campaign(c CampaignSpec) (*CampaignReport, error) {
	return CampaignCtx(context.Background(), c, CampaignResilience{})
}

// CampaignResilience configures checkpoint/resume for a concrete campaign.
type CampaignResilience = simplescalar.Resilience

// CampaignCtx runs the concrete baseline campaign, tallying outcomes into
// Table 2's buckets, with optional checkpointing: completed injections are
// journaled as they finish and a killed campaign resumes from the journal.
// Cancellation returns the partial tallies marked Interrupted.
func CampaignCtx(ctx context.Context, c CampaignSpec, r CampaignResilience) (*CampaignReport, error) {
	if c.Unit == nil || c.Unit.Program == nil {
		return nil, fmt.Errorf("symplfied: CampaignSpec.Unit is required")
	}
	return simplescalar.RunResilient(ctx, simplescalar.Config{
		Program:       c.Unit.Program,
		Input:         c.Input,
		Detectors:     c.Unit.Detectors,
		Watchdog:      c.Watchdog,
		Classify:      simplescalar.SingleValueClassifier(c.AllowedOutputs...),
		Seed:          c.Seed,
		RandomPerReg:  c.RandomPerReg,
		MaxInjections: c.Faults,
	}, r)
}

// Cross-validation (internal/crossval): differential testing of the symbolic
// engine against the concrete machine. A campaign runs seeded concrete
// injections over every site and diffs each outcome against the symbolic
// terminal set of the same site; a conclusive SymbolicMiss in the report is
// an unsoundness in the engine.
type (
	// CrossvalSpec describes one cross-validation campaign.
	CrossvalSpec = crossval.Spec
	// CrossvalConfig carries the operational knobs of a sweep (parallelism,
	// checkpoint/resume); none affect verdicts or report bytes.
	CrossvalConfig = crossval.Config
	// CrossvalReport is the deterministic campaign summary; see Sound.
	CrossvalReport = crossval.Report
	// CrossvalMismatch is one concrete↔symbolic disagreement with its repro.
	CrossvalMismatch = crossval.Mismatch
	// CrossvalClass discriminates mismatch kinds.
	CrossvalClass = crossval.Class
)

// Crossval mismatch classes.
const (
	// CrossvalSymbolicMiss: a concrete outcome the symbolic terminal set does
	// not cover — unsoundness.
	CrossvalSymbolicMiss = crossval.SymbolicMiss
	// CrossvalConcreteMiss: a symbolic outcome no concrete trial reproduced —
	// expected; the symbolic engine is strictly stronger.
	CrossvalConcreteMiss = crossval.ConcreteMiss
	// CrossvalClassDrift: the engines disagree on the crash/hang/detect class
	// or on whether the site was reached.
	CrossvalClassDrift = crossval.ClassDrift
)

// CrossValidate runs a cross-validation campaign with default operational
// settings.
func CrossValidate(spec CrossvalSpec) (*CrossvalReport, error) {
	return CrossValidateCtx(context.Background(), spec, CrossvalConfig{})
}

// CrossValidateCtx runs a cross-validation campaign under ctx with
// checkpoint/resume support. Cancellation returns the partial report with
// Interrupted set.
func CrossValidateCtx(ctx context.Context, spec CrossvalSpec, cfg CrossvalConfig) (*CrossvalReport, error) {
	return crossval.RunCtx(ctx, spec, cfg)
}

// Detector hardening (the automatic counterpart of examples/hardening's
// manual workflow), re-exported from internal/harden.
type (
	// HardenOptions tunes the hardening pass; the zero value selects
	// sensible defaults.
	HardenOptions = harden.Options
	// HardenResult reports gaps found, detectors synthesized, and
	// before/after detection coverage.
	HardenResult = harden.Result
	// HardenGap records what happened to one coverage gap.
	HardenGap = harden.GapReport
	// HardenSite compares one injection site before and after hardening.
	HardenSite = harden.SiteCoverage
	// HardenStrategy names a CHECK synthesis tactic.
	HardenStrategy = harden.Strategy
)

// Synthesis strategies, in the order the synthesizer tries them.
const (
	HardenInvariant = harden.StrategyInvariant
	HardenRange     = harden.StrategyRange
	HardenDuplicate = harden.StrategyDuplicate
)

// Harden runs the detector-hardening compiler pass on a unit: coverage-gap
// analysis, CHECK synthesis, splice, fault-free gate, and verified
// re-coverage (targeted symbolic sweeps plus a crossval spot-check).
func Harden(u *Unit, input []int64, opt HardenOptions) (*HardenResult, error) {
	return HardenCtx(context.Background(), u, input, opt)
}

// HardenCtx is Harden under a context.
func HardenCtx(ctx context.Context, u *Unit, input []int64, opt HardenOptions) (*HardenResult, error) {
	return harden.HardenCtx(ctx, harden.Spec{Program: u.Program, Detectors: u.Detectors, Input: input}, opt)
}
