// Tcas: the paper's Section 6 case study on the aircraft collision
// avoidance application. This example
//
//  1. reproduces the catastrophic scenario — a transient error in the
//     return-address register $31 inside Non_Crossing_Biased_Climb turns the
//     upward advisory (1) into a downward advisory (2) without any
//     exception — and prints the decision trace that explains it;
//  2. runs a scaled-down cluster-style study over all register errors;
//  3. contrasts with a concrete random/extreme-value campaign that finds no
//     such case (the paper's Table 2 headline).
package main

import (
	"fmt"
	"log"

	"symplfied"
	"symplfied/internal/apps/tcas"
	"symplfied/internal/isa"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	unit := &symplfied.Unit{Program: tcas.Program()}
	input := tcas.UpwardInput()
	ref := symplfied.Execute(unit.Program, input.Slice(), symplfied.ExecConfig{})
	fmt.Printf("fault-free advisory: %s (oracle %d)\n\n", ref.Output, tcas.Oracle(input))

	// 1. The targeted catastrophic scenario.
	jrPC, err := tcas.ReturnJrPC(unit.Program, "Non_Crossing_Biased_Climb")
	if err != nil {
		return err
	}
	rep, err := symplfied.Search(symplfied.SearchSpec{
		Unit:  unit,
		Input: input.Slice(),
		Injections: []symplfied.Injection{{
			Class: symplfied.ClassRegister,
			PC:    jrPC,
			Loc:   isa.RegLoc(isa.RegRA),
		}},
		Goal:   symplfied.GoalWrongAdvisory,
		Limits: symplfied.Limits{Watchdog: 4000},
	})
	if err != nil {
		return err
	}
	for _, f := range rep.Findings {
		vals := f.State.OutputValues()
		if len(vals) != 1 || !vals[0].Equal(isa.Int(tcas.DownwardRA)) {
			continue
		}
		fmt.Println("catastrophic finding (advisory flipped 1 -> 2):")
		fmt.Printf("  %s\n", f.Describe())
		fmt.Println("  trace:")
		for _, e := range f.State.Trace.Events() {
			fmt.Printf("    %s\n", e)
		}
		break
	}

	// 2. The full study, decomposed cluster-style.
	_, sum, err := symplfied.Study(symplfied.SearchSpec{
		Unit:   unit,
		Input:  input.Slice(),
		Class:  symplfied.ClassRegister,
		Goal:   symplfied.GoalWrongAdvisory,
		Limits: symplfied.Limits{Watchdog: 4000},
	}, symplfied.StudyConfig{Tasks: 32, TaskStateBudget: 25_000, MaxFindingsPerTask: 10})
	if err != nil {
		return err
	}
	fmt.Printf("\nstudy over all register errors: %d tasks, %d completed (%d with findings), %d findings total\n",
		sum.Tasks, sum.Completed, sum.CompletedWithFinds, len(sum.Findings))

	// 3. The concrete baseline misses the flip.
	camp, err := symplfied.Campaign(symplfied.CampaignSpec{
		Unit:           unit,
		Input:          input.Slice(),
		Faults:         6253,
		Seed:           2008,
		RandomPerReg:   30,
		Watchdog:       50_000,
		AllowedOutputs: []int64{0, 1, 2},
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nconcrete campaign (%d injections): outcome-2 cases found: %d\n", camp.Total, camp.Counts["2"])
	for _, label := range camp.Labels() {
		fmt.Printf("  %-7s %6.2f%% (%d)\n", label, camp.Percent(label), camp.Counts[label])
	}
	fmt.Println("\nthe symbolic search finds the 1->2 flip; the concrete campaign cannot hit the")
	fmt.Println("single return-address value that lands on the DOWNWARD_RA assignment.")
	return nil
}
