// Quickstart: assemble a program, execute it concretely, then run a
// symbolic fault-injection search that enumerates every outcome a transient
// register error can cause — the paper's Section 4.1 example, end to end.
package main

import (
	"fmt"
	"log"

	"symplfied"
)

// The paper's Figure 2: factorial in SymPLFIED's generic assembly language.
const source = `
	ori $2 $0 #1        -- initial product p = 1
	read $1             -- read i from input
	mov $3 $1
	ori $4 $0 #1        -- for comparison purposes
loop:	setgt $5 $3 $4      -- start of loop
	beq $5 0 exit       -- loop condition: $3 > $4
	mult $2 $2 $3       -- p = p * i
	subi $3 $3 #1       -- i = i - 1
	beq $0 0 loop       -- loop backedge
exit:	prints "Factorial = "
	print $2
	halt
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	unit, err := symplfied.Assemble("factorial", source)
	if err != nil {
		return err
	}

	// 1. Concrete execution on the machine model.
	res := symplfied.Execute(unit.Program, []int64{5}, symplfied.ExecConfig{})
	fmt.Printf("fault-free run: %q (halted=%v, %d instructions)\n\n", res.Output, res.Halted, res.Steps)

	// 2. Symbolic fault injection: enumerate ALL register errors (one per
	// execution, injected into the registers each instruction uses) that
	// lead to an incorrect output. One symbolic err per run stands for
	// every possible corrupted value — no 2^64 value sweep.
	rep, err := symplfied.Search(symplfied.SearchSpec{
		Unit:   unit,
		Input:  []int64{5},
		Class:  symplfied.ClassRegister,
		Goal:   symplfied.GoalIncorrectOutput,
		Limits: symplfied.Limits{Watchdog: 400},
	})
	if err != nil {
		return err
	}

	fmt.Printf("symbolic search: %d injections, %d states, outcomes %v\n",
		len(rep.Spec.Injections), rep.TotalStates, rep.Outcomes)
	fmt.Printf("undetected incorrect outcomes: %d\n", len(rep.Findings))
	shown := 0
	for _, f := range rep.Findings {
		if shown >= 6 {
			fmt.Printf("  ... and %d more\n", len(rep.Findings)-shown)
			break
		}
		fmt.Printf("  %s\n", f.Describe())
		shown++
	}

	// 3. Every finding carries the decision trace that explains it.
	if len(rep.Findings) > 0 {
		fmt.Println("\ntrace of the first finding:")
		for _, e := range rep.Findings[0].State.Trace.Events() {
			fmt.Printf("  %s\n", e)
		}
	}
	return nil
}
