// Harden: the detector-hardening compiler pass end to end on the paper's
// tcas case study — the automatic counterpart of examples/hardening's
// hand-placed canary.
//
//  1. ANALYZE: the coverage-gap analysis walks liveness dead-register
//     windows and may-taint escapes, finding every (definition, register)
//     whose corruption can reach program output or control flow before any
//     CHECK reads it.
//  2. SYNTHESIZE: for each gap the pass builds a CHECK from the strongest
//     applicable claim — a constant invariant (constant propagation), an
//     affine counter range (initializer + guard bound), or a shadow
//     duplicate of the live value.
//  3. SPLICE + GATE: the detectors are spliced in front of the reads; any
//     synthesized check that fires on the golden run refutes its own
//     invariant and is dropped (the empirical gate catches what static
//     over-approximation missed).
//  4. VERIFY: a targeted symbolic sweep compares detection coverage per
//     injection site before and after, and a crossval spot-check confirms
//     the symbolic engine stays sound on the rewritten unit.
package main

import (
	"fmt"
	"log"

	"symplfied"
	"symplfied/internal/apps/tcas"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	unit := &symplfied.Unit{Program: tcas.Program()}
	input := tcas.UpwardInput().Slice()

	res, err := symplfied.Harden(unit, input, symplfied.HardenOptions{Watchdog: 4000})
	if err != nil {
		return err
	}

	fmt.Printf("coverage-gap analysis: %d gaps found, %d targeted\n", res.GapsFound, res.GapsTargeted)
	byStrategy := map[symplfied.HardenStrategy]int{}
	for _, g := range res.Gaps {
		if g.Dropped == "" {
			byStrategy[g.Strategy]++
		}
	}
	fmt.Printf("synthesis: %d gaps hardened (%d invariant, %d range, %d duplicate), %d detectors, %d instructions inserted\n",
		res.GapsHardened, byStrategy[symplfied.HardenInvariant], byStrategy[symplfied.HardenRange],
		byStrategy[symplfied.HardenDuplicate], res.Synthesized, res.Inserted)

	// Show one synthesized detector per strategy.
	shown := map[symplfied.HardenStrategy]bool{}
	for _, g := range res.Gaps {
		if g.Dropped != "" || shown[g.Strategy] {
			continue
		}
		shown[g.Strategy] = true
		fmt.Printf("  %-9s gap @%d %s (%d-site window escaping to %s @%d): %s\n",
			g.Strategy+":", g.Gap.DefPC, g.Gap.Reg, len(g.Gap.Window), g.Gap.Kind, g.Gap.EscapePC, g.Detectors[0])
	}

	fmt.Printf("fault-free gate: output %q preserved in %d steps\n", res.FaultFreeOutput, res.FaultFreeSteps)
	fmt.Printf("re-lint: residual gaps %d (was %d)\n", res.ResidualGaps, res.GapsFound)
	fmt.Printf("targeted sweep over %d sites:\n", len(res.Sites))
	fmt.Printf("  detected terminals:     %4d -> %4d\n", res.BeforeDetected, res.AfterDetected)
	fmt.Printf("  undetected corruptions: %4d -> %4d\n", res.BeforeUndetected, res.AfterUndetected)
	if res.AfterUndetected >= res.BeforeUndetected {
		return fmt.Errorf("hardening did not reduce undetected corruptions")
	}
	fmt.Printf("soundness spot-check: %s\n", res.Crossval.Summary())
	return nil
}
