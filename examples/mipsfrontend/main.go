// MIPS front end: the paper's supporting translator. A program written in
// MIPS-dialect assembly (SPIM syscalls, data segment, pseudo-instructions)
// is translated into SymPLFIED's generic assembly language, executed, and
// then analyzed symbolically — demonstrating that any front-end architecture
// feeds the same machine/error/detector models.
package main

import (
	"fmt"
	"log"

	"symplfied"
)

// gcd(a, b) in MIPS, reading two integers and printing the result.
const gcdMIPS = `
	.data
msg:	.asciiz "gcd = "
	.text
main:
	li   $v0, 5          # read a
	syscall
	move $t0, $v0
	li   $v0, 5          # read b
	syscall
	move $t1, $v0
loop:
	beq  $t1, 0, done
	div  $t0, $t1        # HI = a mod b
	mfhi $t2
	move $t0, $t1
	move $t1, $t2
	j    loop
done:
	la   $a0, msg
	li   $v0, 4          # print_string
	syscall
	move $a0, $t0
	li   $v0, 1          # print_int
	syscall
	li   $v0, 10
	syscall
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	prog, err := symplfied.TranslateMIPS("gcd", gcdMIPS)
	if err != nil {
		return err
	}
	fmt.Printf("translated gcd: %d SymPLFIED instructions\n", prog.Len())

	res := symplfied.Execute(prog, []int64{252, 105}, symplfied.ExecConfig{})
	fmt.Printf("gcd(252, 105): %q (halted=%v)\n\n", res.Output, res.Halted)

	// Symbolic analysis of the translated program: which register errors
	// make gcd print a wrong value without crashing?
	unit := &symplfied.Unit{Program: prog}
	rep, err := symplfied.Search(symplfied.SearchSpec{
		Unit:   unit,
		Input:  []int64{252, 105},
		Class:  symplfied.ClassRegister,
		Goal:   symplfied.GoalIncorrectOutput,
		Limits: symplfied.Limits{Watchdog: 2000, MaxFindings: 3},
	})
	if err != nil {
		return err
	}
	fmt.Printf("symbolic search over the translated program: %d injections, %d states\n",
		len(rep.Spec.Injections), rep.TotalStates)
	fmt.Printf("undetected incorrect outcomes: %d; first few:\n", len(rep.Findings))
	for i, f := range rep.Findings {
		if i == 6 {
			break
		}
		fmt.Printf("  %s\n", f.Describe())
	}
	return nil
}
