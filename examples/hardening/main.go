// Hardening: the full SymPLFIED workflow closed end to end, on the paper's
// own catastrophic finding.
//
//  1. SEARCH: symbolic injection over tcas finds that a transient error in
//     the return-address register at Non_Crossing_Biased_Climb's return can
//     silently flip the advisory from 1 (climb) to 2 (descend).
//  2. FORMULATE: the finding's constraint store pins the corrupted value to
//     exactly the hijack target, telling the programmer what to check — a
//     return-address canary against the saved copy in the frame.
//  3. VERIFY: re-running the search on the hardened program yields a PROOF
//     of resilience for that fault site (paper Section 3.1, output 1) —
//     and also makes the residual single-instruction window between the
//     canary and the jr explicit.
package main

import (
	"fmt"
	"log"

	"symplfied"
	"symplfied/internal/apps/tcas"
	"symplfied/internal/isa"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func searchAt(unit *symplfied.Unit, pc int) (*symplfied.Report, error) {
	return symplfied.Search(symplfied.SearchSpec{
		Unit:  unit,
		Input: tcas.UpwardInput().Slice(),
		Injections: []symplfied.Injection{{
			Class: symplfied.ClassRegister,
			PC:    pc,
			Loc:   isa.RegLoc(isa.RegRA),
		}},
		Goal:   symplfied.GoalWrongAdvisory,
		Limits: symplfied.Limits{Watchdog: 4000},
	})
}

func run() error {
	// 1. SEARCH on the unprotected program.
	plain := &symplfied.Unit{Program: tcas.Program()}
	jrPC, err := tcas.ReturnJrPC(plain.Program, "Non_Crossing_Biased_Climb")
	if err != nil {
		return err
	}
	rep, err := searchAt(plain, jrPC)
	if err != nil {
		return err
	}
	fmt.Printf("unprotected tcas, err in $31 at NCBC's return: verdict %s, %d escaping wrong advisories\n",
		rep.Verdict(), len(rep.Findings))
	for _, f := range rep.Findings {
		vals := f.State.OutputValues()
		if len(vals) == 1 && vals[0].Equal(isa.Int(tcas.DownwardRA)) {
			fmt.Printf("  catastrophic: advisory 1 -> 2 when corrupted $31 satisfies {%s}\n",
				f.State.Sym.RootConstraints(0))
			break
		}
	}

	// 2. FORMULATE: the constraint names the single dangerous value, so the
	// countermeasure is a canary comparing $31 with the saved copy.
	hardProg, dets := tcas.Hardened()
	hardened := &symplfied.Unit{Program: hardProg, Detectors: dets}
	fmt.Printf("\nhardening: %s inserted before NCBC's jr\n", dets.All()[0])

	// 3. VERIFY: corruption at the return sequence is now caught or benign.
	checkPC := -1
	for pc := 0; pc < hardProg.Len(); pc++ {
		if in := hardProg.At(pc); in.Op == isa.OpCheck {
			checkPC = pc
			break
		}
	}
	rep, err = searchAt(hardened, checkPC)
	if err != nil {
		return err
	}
	fmt.Printf("hardened tcas, same corruption: verdict %s (%d escaping findings)\n",
		rep.Verdict(), len(rep.Findings))

	// ... and the residue is explicit: corruption in the one-instruction
	// window after the canary still escapes. No inline check can close it;
	// SymPLFIED quantifies exactly what remains.
	hardJr, err := tcas.ReturnJrPC(hardProg, "Non_Crossing_Biased_Climb")
	if err != nil {
		return err
	}
	rep, err = searchAt(hardened, hardJr)
	if err != nil {
		return err
	}
	fmt.Printf("residual window (between canary and jr): verdict %s (%d findings)\n",
		rep.Verdict(), len(rep.Findings))
	return nil
}
