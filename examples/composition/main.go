// Composition: the paper's hierarchical analysis sketch (Section 3.4) made
// concrete. A detector-protected component is proven resilient in isolation;
// its injections are then discharged from the whole-program search, which
// localizes the remaining escaping errors in the unprotected code — "first
// the detection mechanisms deployed in small components are proved to
// protect that component from errors of a particular class, and then
// inter-component interactions are considered".
package main

import (
	"fmt"
	"log"

	"symplfied"
)

// The program computes a checked sum (protected component), then scales and
// emits it through unprotected code.
const source = `
-- component "checked-sum": compute and verify against the golden value
	li $1 3
	li $2 4
	add $3 $1 $2
	check ($3 == 7)
-- unprotected tail: scale and print
	multi $4 $3 10
	print $4
	halt
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	unit, err := symplfied.Assemble("composed", source)
	if err != nil {
		return err
	}
	spec := symplfied.SearchSpec{
		Unit:   unit,
		Class:  symplfied.ClassRegister,
		Goal:   symplfied.GoalIncorrectOutput,
		Limits: symplfied.Limits{Watchdog: 100},
	}

	// Flat analysis: the whole injection space at once.
	flat, err := symplfied.Search(spec)
	if err != nil {
		return err
	}
	fmt.Printf("flat search: %d injections, %d states, verdict %s, %d findings\n",
		len(flat.Spec.Injections), flat.TotalStates, flat.Verdict(), len(flat.Findings))

	// Compositional: prove the checked component, prune, search the rest.
	rep, proofs, err := symplfied.SearchComposed(spec, []symplfied.Component{
		{Name: "checked-sum", Lo: 0, Hi: 3},
	})
	if err != nil {
		return err
	}
	for _, p := range proofs {
		fmt.Printf("component %q [%d..%d]: verdict %s (%d states)\n",
			p.Component.Name, p.Component.Lo, p.Component.Hi, p.Verdict, p.Report.TotalStates)
	}
	fmt.Printf("composed remainder: %d injections, %d states, verdict %s\n",
		len(rep.Spec.Injections), rep.TotalStates, rep.Verdict())
	for _, f := range rep.Findings {
		fmt.Printf("  escaping (unprotected tail): %s\n", f.Describe())
	}
	fmt.Println("\nevery escaping error localizes in the unprotected tail; the proven")
	fmt.Println("component's injections were discharged without re-exploration.")
	return nil
}
