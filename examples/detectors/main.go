// Detectors: the paper's Section 4.2 walkthrough. The factorial program of
// Figure 3 embeds two error detectors through CHECK annotations; under a
// symbolic loop-counter error, SymPLFIED shows the first check can never
// fire (its condition is subsumed by the loop-continuation constraint),
// forks at the second, and derives the exact condition under which the
// error is detected — making the escaping errors explicit.
package main

import (
	"fmt"
	"log"

	"symplfied"
	"symplfied/internal/apps/factorial"
	"symplfied/internal/isa"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	unit, err := symplfied.Assemble("factorial-detectors", factorial.SourceDetectors)
	if err != nil {
		return err
	}
	fmt.Println("detectors parsed from the inline CHECK annotations:")
	for _, d := range unit.Detectors.All() {
		fmt.Printf("  %s\n", d)
	}

	subiPC, ok := factorial.SubiPC(unit.Program)
	if !ok {
		return fmt.Errorf("no decrement instruction found")
	}
	injection := symplfied.Injection{
		Class: symplfied.ClassRegister,
		PC:    subiPC,
		Loc:   isa.RegLoc(3),
	}

	// Which corrupted values does the detector pair CATCH? Search for
	// detected terminations and read the derived constraints off the
	// constraint store.
	detected, err := symplfied.Search(symplfied.SearchSpec{
		Unit:       unit,
		Input:      []int64{5},
		Injections: []symplfied.Injection{injection},
		Goal:       symplfied.GoalDetected,
		Limits:     symplfied.Limits{Watchdog: 400},
	})
	if err != nil {
		return err
	}
	fmt.Printf("\noutcomes under the symbolic loop-counter error: %v\n", detected.Outcomes)
	fmt.Println("detected cases, with the solver's condition on the corrupted value x:")
	for _, f := range detected.Findings {
		cons := f.State.Sym.RootConstraints(0)
		fmt.Printf("  %s\n    detected iff %s\n", f.State.Exc.Detail, cons)
	}

	// And which errors ESCAPE? These are the cases the paper says the
	// programmer can now handle with an additional detector. (The err-output
	// goal needs no fault-free reference run — which matters here, because
	// the literal Figure 3 detector is over-strict and fires even on the
	// clean input-5 execution.)
	escaped, err := symplfied.Search(symplfied.SearchSpec{
		Unit:       unit,
		Input:      []int64{5},
		Injections: []symplfied.Injection{injection},
		Goal:       symplfied.GoalErrOutput,
		Limits:     symplfied.Limits{Watchdog: 400},
	})
	if err != nil {
		return err
	}
	fmt.Println("\nescaping incorrect outcomes (undetected):")
	for _, f := range escaped.Findings {
		fmt.Printf("  output %q, symbolic state: %s\n", f.State.OutputString(), f.State.Sym.Describe())
	}
	return nil
}
