// Analyze: static program analysis before any fault is injected. The
// analysis subsystem (internal/analysis) builds a control-flow graph over
// the assembly, runs backward register liveness (counting detector CHECK
// reads as uses, per the paper's Section 5.3 detector model), and lints the
// program: unreachable code, detectors whose checks can never execute, dead
// stores, reads of never-written registers.
//
// The same liveness facts then shrink the injection campaign: a register
// proven dead at a breakpoint cannot propagate an error, so the search
// skips it with a proof instead of exploring it — the dataflow
// generalization of the paper's Section 6.1 syntactic pruning. Both runs
// below produce identical verdicts; the pruned one explores fewer states.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"symplfied"
	"symplfied/internal/analysis"
	"symplfied/internal/faults"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	src, err := os.ReadFile(filepath.Join("examples", "analyze", "unreachable-detector.sym"))
	if err != nil {
		// Allow running from the example's own directory too.
		src, err = os.ReadFile("unreachable-detector.sym")
		if err != nil {
			return err
		}
	}
	unit, err := symplfied.Assemble("unreachable-detector", string(src))
	if err != nil {
		return err
	}

	// 1. Lint: the program deliberately hides a detector behind a jmp.
	diags := analysis.Lint(unit.Program, unit.Detectors)
	fmt.Println("diagnostics:")
	for _, d := range diags {
		fmt.Printf("  %s\n", d)
	}
	errs, warns := analysis.Summary(diags)
	fmt.Printf("%d errors, %d warnings\n\n", errs, warns)

	// 2. Liveness: which registers could an error just before the first
	// check even propagate through? Everything else is provably benign.
	a := analysis.Analyze(unit.Program, unit.Detectors)
	fmt.Printf("live before check #1 (@2): %s — errors in any other register there are provably benign\n\n",
		a.LiveIn[2])

	// 3. The proof at work on the exhaustive register campaign — every
	// architectural register at every instruction, the 800x32 space of the
	// paper's Section 6.1 — unpruned vs pruned. Verdict-identical, strictly
	// fewer explorations. (A register an instruction reads is live by
	// definition, so the paper's read-registers-only enumeration is never
	// prunable; liveness pays off on the exhaustive space, and also keeps
	// registers the syntactic rule would wrongly skip — ones read only by
	// later instructions.)
	search := symplfied.SearchSpec{
		Unit:       unit,
		Input:      []int64{5},
		Injections: faults.RegisterInjections(unit.Program, false),
		Goal:       symplfied.GoalIncorrectOutput,
	}
	plain, err := symplfied.Search(search)
	if err != nil {
		return err
	}
	search.PruneDeadInjections = true
	pruned, err := symplfied.Search(search)
	if err != nil {
		return err
	}
	fmt.Printf("unpruned: %d injections, %d findings\n", len(plain.PerInjection), len(plain.Findings))
	fmt.Printf("pruned:   %d injections (%d proven benign by liveness), %d findings\n",
		len(pruned.PerInjection), pruned.PrunedInjections, len(pruned.Findings))
	return nil
}
