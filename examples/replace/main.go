// Replace: the paper's Section 6.4 scalability study subject. This example
// reproduces the reported scenario: a transient error corrupting the
// delimiter parameter passed to dodash (the character-range expander inside
// pattern construction) builds an erroneous pattern, so the pattern match
// fails and the program emits the line without the intended substitution.
package main

import (
	"fmt"
	"log"

	"symplfied"
	"symplfied/internal/apps/replace"
	"symplfied/internal/isa"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		pattern = "[ab]c]"
		subst   = "X"
		line    = "qac]q"
	)
	unit := &symplfied.Unit{Program: replace.Program()}
	input := replace.Input(pattern, subst, line)

	ref := symplfied.Execute(unit.Program, input, symplfied.ExecConfig{})
	fmt.Printf("pattern %q, substitution %q, line %q\n", pattern, subst, line)
	fmt.Printf("fault-free output: %q (%d instructions)\n\n", decode(ref.Values), ref.Steps)

	callPC, err := replace.DodashDelimCallPC(unit.Program)
	if err != nil {
		return err
	}
	rep, err := symplfied.Search(symplfied.SearchSpec{
		Unit:  unit,
		Input: input,
		Injections: []symplfied.Injection{{
			Class: symplfied.ClassRegister,
			PC:    callPC,
			Loc:   isa.RegLoc(4), // the delimiter argument register
		}},
		Goal:   symplfied.GoalIncorrectOutput,
		Limits: symplfied.Limits{Watchdog: 200_000},
	})
	if err != nil {
		return err
	}

	fmt.Printf("symbolic error in dodash's delimiter parameter: %d incorrect outcomes\n", len(rep.Findings))
	for _, f := range rep.Findings {
		fmt.Printf("  output %q\n    symbolic state: %s\n", decode(f.State.OutputValues()), f.State.Sym.Describe())
	}
	fmt.Println("\nthe forks where the erroneous delimiter stops the class early build a wrong")
	fmt.Println("pattern: the intended match \"ac]\" fails and the line passes through unsubstituted.")
	return nil
}

// decode renders printed character codes as text (err values as <err>).
func decode(vals []symplfied.Value) string {
	out := ""
	for _, v := range vals {
		if c, ok := v.Concrete(); ok {
			if c >= 32 && c < 127 {
				out += string(rune(c))
			} else if c == 10 {
				out += "\\n"
			} else {
				out += fmt.Sprintf("<%d>", c)
			}
		} else {
			out += "<err>"
		}
	}
	return out
}
