// Cross-validation: run the paper's concrete fault-injection baseline
// (Section 6.3 — extreme + seeded random values at every register site)
// and diff each concrete outcome against the symbolic terminal set for the
// same injection point. Agreement everywhere is a machine-checked soundness
// argument for the symbolic engine; any SymbolicMiss would be an engine bug
// or an unsound pruning, delivered with a full repro.
package main

import (
	"fmt"
	"log"

	"symplfied"
)

// The paper's Figure 2 factorial again — small enough that the whole
// cross-validation sweep (every site, every value) runs in well under a
// second.
const source = `
	ori $2 $0 #1        -- initial product p = 1
	read $1             -- read i from input
	mov $3 $1
	ori $4 $0 #1        -- for comparison purposes
loop:	setgt $5 $3 $4      -- start of loop
	beq $5 0 exit       -- loop condition: $3 > $4
	mult $2 $2 $3       -- p = p * i
	subi $3 $3 #1       -- i = i - 1
	beq $0 0 loop       -- loop backedge
exit:	prints "Factorial = "
	print $2
	halt
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	unit, err := symplfied.Assemble("factorial", source)
	if err != nil {
		return err
	}

	rep, err := symplfied.CrossValidate(symplfied.CrossvalSpec{
		Program:      unit.Program,
		Detectors:    unit.Detectors,
		Input:        []int64{5},
		Watchdog:     400,
		Seed:         2008, // any fixed seed: trials are derived per point, split-invariantly
		RandomPerReg: 3,    // the paper's policy: 3 extremes + 3 randoms per site
	})
	if err != nil {
		return err
	}

	fmt.Println(rep.Summary())
	if rep.Sound() {
		fmt.Println("every concrete outcome was covered by the symbolic terminal set")
	}
	for i := range rep.Mismatches {
		m := &rep.Mismatches[i]
		switch m.Class {
		case symplfied.CrossvalSymbolicMiss:
			// Would fail CI: the symbolic engine claimed this concrete
			// outcome was impossible.
			fmt.Printf("UNSOUND: %s\n", m.Repro)
		case symplfied.CrossvalConcreteMiss:
			// Expected: the symbolic engine enumerated an outcome class no
			// concrete value in our sample happened to produce.
			fmt.Printf("symbolic-only outcome at @%d (expected): %s\n", m.Point.PC, m.Symbolic.Finding)
		}
	}
	return nil
}
